#include "gam.hh"

#include <algorithm>
#include <limits>

#include "sim/debug.hh"
#include "sim/logging.hh"

namespace reach::gam
{

Gam::Gam(sim::Simulator &sim, const std::string &name,
         const GamConfig &config)
    : sim::SimObject(sim, name),
      cfg(config),
      statJobsDone(name + ".jobsDone", "jobs completed"),
      statTasksDispatched(name + ".tasksDispatched",
                          "tasks sent to accelerators"),
      statPolls(name + ".statusPolls", "status packets sent"),
      statDmaBytes(name + ".dmaBytes", "bytes moved by GAM DMA"),
      statFlushes(name + ".forcedFlushes", "forced cache writebacks"),
      statJobLatency(name + ".jobLatency",
                     "submit-to-complete latency (ticks)"),
      statQueueWait(name + ".queueWait",
                    "task wait in scheduling queue (ticks)")
{
    registerStat(statJobsDone);
    registerStat(statTasksDispatched);
    registerStat(statPolls);
    registerStat(statDmaBytes);
    registerStat(statFlushes);
    registerStat(statJobLatency);
    registerStat(statQueueWait);
}

std::uint32_t
Gam::addAccelerator(acc::Accelerator &acc)
{
    rows.push_back(ProgressRow{&acc, std::nullopt, 0, {}});
    return static_cast<std::uint32_t>(rows.size() - 1);
}

std::vector<std::uint32_t>
Gam::acceleratorsAt(acc::Level level) const
{
    std::vector<std::uint32_t> out;
    for (std::uint32_t i = 0; i < rows.size(); ++i) {
        if (rows[i].acc->level() == level)
            out.push_back(i);
    }
    return out;
}

JobId
Gam::submitJob(JobDesc job)
{
    if (job.tasks.empty())
        sim::fatal(name(), ": job '", job.label, "' has no tasks");

    JobId jid = nextJobId++;
    ++activeJobs;

    JobRecord rec;
    rec.desc = std::move(job);
    rec.submitted = now();
    rec.remaining = static_cast<std::uint32_t>(rec.desc.tasks.size());

    // Materialize task records with global ids.
    std::vector<TaskId> ids;
    ids.reserve(rec.desc.tasks.size());
    for (const auto &desc : rec.desc.tasks) {
        TaskId tid = nextTaskId++;
        ids.push_back(tid);

        TaskRecord task;
        task.desc = desc;
        task.job = jid;
        task.depsRemaining = static_cast<std::uint32_t>(desc.deps.size());
        tasks.emplace(tid, std::move(task));
    }
    // Wire dependents (local index -> global id).
    for (std::size_t i = 0; i < rec.desc.tasks.size(); ++i) {
        for (std::size_t dep : rec.desc.tasks[i].deps) {
            if (dep >= ids.size())
                sim::fatal(name(), ": task dep index out of range");
            tasks.at(ids[dep]).dependents.push_back(ids[i]);
        }
    }
    rec.taskIds = ids;
    jobs.emplace(jid, std::move(rec));

    // ACC command packets reach the GAM after the command latency;
    // root tasks then enter their transfer phase.
    scheduleIn(cfg.commandLatency, [this, jid] {
        auto &job_rec = jobs.at(jid);
        for (TaskId tid : job_rec.taskIds) {
            if (tasks.at(tid).depsRemaining == 0)
                startTransfers(tid);
        }
    }, sim::EventPriority::Control, "jobArrive");

    return jid;
}

bool
Gam::blockedByJobOrder(const TaskRecord &task) const
{
    return !cfg.crossJobPipelining && task.job != oldestActiveJob;
}

void
Gam::releaseBlockedTasks()
{
    std::vector<TaskId> ready;
    auto it = jobOrderBlocked.begin();
    while (it != jobOrderBlocked.end()) {
        if (!blockedByJobOrder(tasks.at(*it))) {
            ready.push_back(*it);
            it = jobOrderBlocked.erase(it);
        } else {
            ++it;
        }
    }
    for (TaskId tid : ready)
        startTransfers(tid);
}

void
Gam::startTransfers(TaskId tid)
{
    TaskRecord &task = tasks.at(tid);

    if (blockedByJobOrder(task)) {
        jobOrderBlocked.push_back(tid);
        return;
    }

    task.state = TaskState::WaitingTransfer;
    // Choose the target instance now so transfer paths are known.
    task.assignedAcc = chooseAccelerator(task);
    ++rows[task.assignedAcc].assigned;
    // Charge the compute estimate to the row's backlog (the kernel
    // synthesis report gives the GAM this number, paper §III-A).
    task.backlogCharge = acc::findKernel(task.desc.kernelTemplate)
                             .computeTicks(task.desc.work.ops);
    rows[task.assignedAcc].backlogEstimate += task.backlogCharge;

    std::vector<const InboundTransfer *> moves;
    for (const auto &in : task.desc.inbound) {
        if (in.bytes > 0)
            moves.push_back(&in);
    }
    if (moves.empty()) {
        enqueueTask(tid);
        return;
    }

    task.transfersRemaining = static_cast<std::uint32_t>(moves.size());
    const JobRecord &job = jobs.at(task.job);
    acc::Accelerator *to = rows[task.assignedAcc].acc;

    for (const auto *in : moves) {
        acc::Accelerator *from = nullptr;
        acc::Level from_level = acc::Level::Cpu;
        if (in->from != InboundTransfer::fromHost) {
            const TaskRecord &producer =
                tasks.at(job.taskIds.at(in->from));
            if (producer.state != TaskState::Complete) {
                sim::panic(name(), ": inbound transfer from task that "
                           "is not complete");
            }
            from = rows[producer.assignedAcc].acc;
            from_level = from->level();
        }

        statDmaBytes += static_cast<double>(in->bytes);

        std::uint64_t bytes = in->bytes;
        auto do_dma = [this, tid, from, to, bytes](sim::Tick) {
            acc::Path path =
                pathProvider ? pathProvider(from, to) : acc::Path{};
            sim::Tick done =
                path.empty() ? now() : path.reserve(bytes, now());
            schedule(done, [this, tid] {
                TaskRecord &t = tasks.at(tid);
                if (--t.transfersRemaining == 0)
                    enqueueTask(tid);
            }, sim::EventPriority::Default, "dmaDone");
        };

        // Toward near-data levels, coherent-cache copies must be
        // written back first (paper Fig. 6, steps 2b/2c).
        bool coherent_src = from_level == acc::Level::Cpu ||
                            from_level == acc::Level::OnChip;
        bool near_dst = to->level() == acc::Level::NearMem ||
                        to->level() == acc::Level::NearStor;
        if (coherent_src && near_dst && flushHook) {
            ++statFlushes;
            flushHook(bytes, do_dma);
        } else {
            do_dma(now());
        }
    }
}

std::uint32_t
Gam::chooseAccelerator(const TaskRecord &task) const
{
    if (task.desc.pinnedAcc) {
        std::uint32_t id = *task.desc.pinnedAcc;
        if (id >= rows.size() ||
            rows[id].acc->level() != task.desc.level) {
            sim::fatal(name(), ": task '", task.desc.label,
                       "' pinned to invalid accelerator ", id);
        }
        return id;
    }

    std::uint32_t best = ~0u;
    double best_score = std::numeric_limits<double>::max();
    for (std::uint32_t i = 0; i < rows.size(); ++i) {
        if (rows[i].acc->level() != task.desc.level)
            continue;
        double score;
        if (cfg.scheduling == SchedulingPolicy::EarliestFree) {
            // Expected availability: device reservation end plus the
            // estimated runtime of everything already assigned here.
            score = static_cast<double>(
                        std::max(rows[i].acc->freeAt(), now())) +
                    static_cast<double>(rows[i].backlogEstimate);
            // Ties (all idle) fall back to assignment count.
            score += static_cast<double>(rows[i].assigned) * 1e-3;
        } else {
            score = static_cast<double>(rows[i].assigned);
        }
        if (score < best_score) {
            best_score = score;
            best = i;
        }
    }
    if (best == ~0u) {
        sim::fatal(name(), ": no accelerator registered at level ",
                   acc::levelName(task.desc.level), " for task '",
                   task.desc.label, "'");
    }
    return best;
}

void
Gam::enqueueTask(TaskId tid)
{
    TaskRecord &task = tasks.at(tid);
    task.state = TaskState::Queued;
    task.dispatchedAt = now();
    rows[task.assignedAcc].waiting.push_back(tid);
    kick(task.assignedAcc);
}

void
Gam::kick(std::uint32_t acc_id)
{
    ProgressRow &row = rows[acc_id];
    if (row.currentTask || row.waiting.empty())
        return;
    TaskId tid = row.waiting.front();
    row.waiting.pop_front();
    dispatch(acc_id, tid);
}

void
Gam::dispatch(std::uint32_t acc_id, TaskId tid)
{
    ProgressRow &row = rows[acc_id];
    TaskRecord &task = tasks.at(tid);

    row.currentTask = tid;
    task.state = TaskState::Running;
    sim::dtrace(now(), "GAM", "dispatch '", task.desc.label, "' to ",
                row.acc->name());
    statQueueWait.sample(static_cast<double>(now() - task.dispatchedAt));
    task.dispatchedAt = now();
    ++statTasksDispatched;

    // The launch command travels to the accelerator first.
    scheduleIn(cfg.commandLatency, [this, acc_id, tid] {
        ProgressRow &r = rows[acc_id];
        TaskRecord &t = tasks.at(tid);
        acc::Accelerator &dev = *r.acc;

        dev.configure(acc::findKernel(t.desc.kernelTemplate),
                      cfg.reconfigDelay);

        sim::Tick estimate = static_cast<sim::Tick>(
            static_cast<double>(dev.estimateTicks(t.desc.work)) *
            cfg.estimateErrorFactor);
        r.estimatedDone = now() + estimate;

        bool interrupts = dev.level() == acc::Level::OnChip ||
                          dev.level() == acc::Level::Cpu;

        dev.execute(t.desc.work, [this, tid, interrupts](sim::Tick at) {
            TaskRecord &done = tasks.at(tid);
            done.finishedAt = at;
            done.state = TaskState::DoneUnobserved;
            // On-chip accelerators interrupt the GAM directly;
            // near-data modules wait for a status poll.
            if (interrupts)
                completeTask(tid, at);
        });

        if (!interrupts) {
            schedule(std::max(r.estimatedDone, now() + 1),
                     [this, acc_id, tid] { pollStatus(acc_id, tid); },
                     sim::EventPriority::Control, "statusPoll");
        }
    }, sim::EventPriority::Control, "launch");
}

void
Gam::pollStatus(std::uint32_t acc_id, TaskId tid)
{
    ++statPolls;
    ProgressRow &row = rows[acc_id];
    TaskRecord &task = tasks.at(tid);

    if (task.state == TaskState::DoneUnobserved &&
        task.finishedAt <= now()) {
        // Status packet returns "finished" plus the output location;
        // completion is observed after the round trip.
        completeTask(tid, now() + cfg.statusPollLatency);
        return;
    }

    // Not finished: the device reports a new wait time (we use its
    // actual remaining reservation, which the device knows).
    sim::Tick remaining = row.acc->freeAt() > now()
                              ? row.acc->freeAt() - now()
                              : sim::tickPerUs;
    row.estimatedDone = now() + remaining;
    schedule(now() + std::max<sim::Tick>(remaining,
                                         cfg.statusPollLatency),
             [this, acc_id, tid] { pollStatus(acc_id, tid); },
             sim::EventPriority::Control, "statusRepoll");
}

void
Gam::completeTask(TaskId tid, sim::Tick at)
{
    if (at > now()) {
        schedule(at, [this, tid] { completeTask(tid, now()); },
                 sim::EventPriority::Control, "completeAt");
        return;
    }

    TaskRecord &task = tasks.at(tid);
    if (task.state == TaskState::Complete)
        return;
    task.state = TaskState::Complete;
    sim::dtrace(now(), "GAM", "complete '", task.desc.label, "'");

    if (taskObserver) {
        TaskEvent ev;
        ev.label = task.desc.label;
        ev.accName = rows[task.assignedAcc].acc->name();
        ev.level = task.desc.level;
        ev.dispatched = task.dispatchedAt;
        ev.finished = task.finishedAt;
        ev.observed = now();
        taskObserver(ev);
    }

    ProgressRow &row = rows[task.assignedAcc];
    if (row.assigned > 0)
        --row.assigned;
    row.backlogEstimate -= std::min(row.backlogEstimate,
                                    task.backlogCharge);
    if (row.currentTask && *row.currentTask == tid) {
        row.currentTask.reset();
        kick(task.assignedAcc);
    }

    // Wake dependents.
    for (TaskId dep : task.dependents) {
        TaskRecord &d = tasks.at(dep);
        if (--d.depsRemaining == 0)
            startTransfers(dep);
    }

    // Job bookkeeping.
    JobRecord &job = jobs.at(task.job);
    if (--job.remaining == 0) {
        ++statJobsDone;
        --activeJobs;
        statJobLatency.sample(static_cast<double>(now() - job.submitted));
        if (job.desc.onComplete)
            job.desc.onComplete(now());

        // Advance the serialization frontier past finished jobs.
        while (oldestActiveJob < nextJobId) {
            auto it = jobs.find(oldestActiveJob);
            if (it != jobs.end() && it->second.remaining > 0)
                break;
            ++oldestActiveJob;
        }
        releaseBlockedTasks();
    }
}

} // namespace reach::gam
