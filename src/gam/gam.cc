#include "gam.hh"

#include <algorithm>
#include <limits>
#include <ostream>
#include <sstream>

#include "sim/debug.hh"
#include "sim/logging.hh"

namespace reach::gam
{

const char *
taskStateName(TaskState state)
{
    switch (state) {
      case TaskState::WaitingDeps:
        return "WaitingDeps";
      case TaskState::WaitingTransfer:
        return "WaitingTransfer";
      case TaskState::Queued:
        return "Queued";
      case TaskState::Running:
        return "Running";
      case TaskState::DoneUnobserved:
        return "DoneUnobserved";
      case TaskState::Complete:
        return "Complete";
      case TaskState::Failed:
        return "Failed";
    }
    return "?";
}

void
GamConfig::validate(const std::string &who) const
{
    if (commandLatency == 0)
        sim::fatal(who, ": commandLatency must be positive");
    if (statusPollLatency == 0)
        sim::fatal(who, ": statusPollLatency must be positive");
    if (!(estimateErrorFactor > 0)) {
        sim::fatal(who, ": estimateErrorFactor must be > 0, got ",
                   estimateErrorFactor);
    }
    if (!(watchdogSlack > 0))
        sim::fatal(who, ": watchdogSlack must be > 0, got ", watchdogSlack);
    if (watchdogMin == 0)
        sim::fatal(who, ": watchdogMin must be positive");
    if (!(pollBackoffFactor >= 1.0)) {
        sim::fatal(who, ": pollBackoffFactor must be >= 1, got ",
                   pollBackoffFactor);
    }
    if (maxTaskAttempts == 0)
        sim::fatal(who, ": maxTaskAttempts must be at least 1");
    if (maxPollRetries == 0)
        sim::fatal(who, ": maxPollRetries must be at least 1");
    if (quarantineStrikes == 0)
        sim::fatal(who, ": quarantineStrikes must be at least 1");
}

Gam::Gam(sim::Simulator &sim, const std::string &name,
         const GamConfig &config)
    : sim::SimObject(sim, name),
      cfg(config),
      statJobsDone(name + ".jobsDone", "jobs completed"),
      statJobsFailed(name + ".jobsFailed",
                     "jobs abandoned with an explicit failure status"),
      statTasksDispatched(name + ".tasksDispatched",
                          "tasks sent to accelerators"),
      statPolls(name + ".statusPolls", "status packets sent"),
      statDmaBytes(name + ".dmaBytes", "bytes moved by GAM DMA"),
      statFlushes(name + ".forcedFlushes", "forced cache writebacks"),
      statTaskRetries(name + ".taskRetries",
                      "task attempts re-dispatched after a loss"),
      statFailovers(name + ".failovers",
                    "task attempts dispatched off their home level"),
      statDeadlineMisses(name + ".deadlineMisses",
                         "watchdog deadlines that declared a loss"),
      statPollRetries(name + ".pollRetries",
                      "status polls re-sent after a lost packet"),
      statQuarantines(name + ".quarantines", "instances quarantined"),
      statRecoveries(name + ".recoveries",
                     "quarantined instances recovered"),
      statJobLatency(name + ".jobLatency",
                     "submit-to-complete latency (ticks)"),
      statQueueWait(name + ".queueWait",
                    "task wait in scheduling queue (ticks)")
{
    cfg.validate(name);
    registerStat(statJobsDone);
    registerStat(statJobsFailed);
    registerStat(statTasksDispatched);
    registerStat(statPolls);
    registerStat(statDmaBytes);
    registerStat(statFlushes);
    registerStat(statTaskRetries);
    registerStat(statFailovers);
    registerStat(statDeadlineMisses);
    registerStat(statPollRetries);
    registerStat(statQuarantines);
    registerStat(statRecoveries);
    registerStat(statJobLatency);
    registerStat(statQueueWait);
}

std::uint32_t
Gam::addAccelerator(acc::Accelerator &acc)
{
    rows.push_back(ProgressRow{&acc, std::nullopt, 0, {}});
    return static_cast<std::uint32_t>(rows.size() - 1);
}

std::vector<std::uint32_t>
Gam::acceleratorsAt(acc::Level level) const
{
    std::vector<std::uint32_t> out;
    for (std::uint32_t i = 0; i < rows.size(); ++i) {
        if (rows[i].acc->level() == level)
            out.push_back(i);
    }
    return out;
}

JobId
Gam::submitJob(JobDesc job)
{
    if (job.tasks.empty())
        sim::fatal(name(), ": job '", job.label, "' has no tasks");

    JobId jid = nextJobId++;
    ++activeJobs;

    JobRecord rec;
    rec.desc = std::move(job);
    rec.submitted = now();
    rec.remaining = static_cast<std::uint32_t>(rec.desc.tasks.size());

    // Materialize task records with global ids.
    std::vector<TaskId> ids;
    ids.reserve(rec.desc.tasks.size());
    for (const auto &desc : rec.desc.tasks) {
        TaskId tid = nextTaskId++;
        ids.push_back(tid);

        TaskRecord task;
        task.desc = desc;
        task.job = jid;
        task.depsRemaining = static_cast<std::uint32_t>(desc.deps.size());
        tasks.emplace(tid, std::move(task));
    }
    // Wire dependents (local index -> global id).
    for (std::size_t i = 0; i < rec.desc.tasks.size(); ++i) {
        for (std::size_t dep : rec.desc.tasks[i].deps) {
            if (dep >= ids.size())
                sim::fatal(name(), ": task dep index out of range");
            tasks.at(ids[dep]).dependents.push_back(ids[i]);
        }
    }
    rec.taskIds = ids;
    jobs.emplace(jid, std::move(rec));

    // ACC command packets reach the GAM after the command latency;
    // root tasks then enter their transfer phase.
    scheduleIn(cfg.commandLatency, [this, jid] {
        auto jit = jobs.find(jid);
        if (jit == jobs.end())
            return;
        // Copy: beginTransfers can fail the job and erase the record.
        std::vector<TaskId> roots;
        for (TaskId tid : jit->second.taskIds) {
            if (tasks.at(tid).depsRemaining == 0)
                roots.push_back(tid);
        }
        for (TaskId tid : roots) {
            auto it = tasks.find(tid);
            if (it != tasks.end() &&
                it->second.state == TaskState::WaitingDeps) {
                beginTransfers(tid);
            }
        }
    }, sim::EventPriority::Control, "jobArrive");

    return jid;
}

bool
Gam::blockedByJobOrder(const TaskRecord &task) const
{
    return !cfg.crossJobPipelining && task.job != oldestActiveJob;
}

void
Gam::releaseBlockedTasks()
{
    std::vector<TaskId> ready;
    auto it = jobOrderBlocked.begin();
    while (it != jobOrderBlocked.end()) {
        auto tit = tasks.find(*it);
        if (tit == tasks.end()) {
            it = jobOrderBlocked.erase(it);
        } else if (!blockedByJobOrder(tit->second)) {
            ready.push_back(*it);
            it = jobOrderBlocked.erase(it);
        } else {
            ++it;
        }
    }
    for (TaskId tid : ready)
        beginTransfers(tid);
}

Gam::TaskRecord *
Gam::liveTask(TaskId tid, std::uint32_t stamp)
{
    auto it = tasks.find(tid);
    if (it == tasks.end() || it->second.attempts != stamp)
        return nullptr;
    return &it->second;
}

void
Gam::disarmTask(TaskRecord &task)
{
    if (task.watchdogPending) {
        simulator().events().deschedule(task.watchdogEv);
        task.watchdogPending = false;
    }
    if (task.pollPending) {
        simulator().events().deschedule(task.pollEv);
        task.pollPending = false;
    }
}

void
Gam::releaseRowCharge(TaskId tid, TaskRecord &task)
{
    if (task.assignedAcc == ~0u)
        return;
    ProgressRow &row = rows[task.assignedAcc];
    if (row.assigned > 0)
        --row.assigned;
    row.backlogEstimate -= std::min(row.backlogEstimate,
                                    task.backlogCharge);
    task.backlogCharge = 0;
    if (row.currentTask && *row.currentTask == tid)
        row.currentTask.reset();
}

std::string
Gam::remapTemplate(const std::string &tmpl, acc::Level level) const
{
    // Kernel template ids are "<family>-<device>" (see kernelCatalog);
    // cross-level failover keeps the family and swaps the device.
    auto dash = tmpl.rfind('-');
    if (dash == std::string::npos)
        return {};
    const char *suffix = level == acc::Level::OnChip ? "VU9P"
                         : level == acc::Level::Cpu ? "CPU"
                                                    : "ZCU9";
    std::string candidate = tmpl.substr(0, dash + 1) + suffix;
    return acc::findKernelMaybe(candidate) ? candidate : std::string{};
}

Gam::Route
Gam::routeTask(const TaskRecord &task, std::uint32_t exclude_acc)
{
    const TaskDesc &d = task.desc;

    // Honor a pin while its target is usable; failover overrides it.
    if (d.pinnedAcc) {
        std::uint32_t id = *d.pinnedAcc;
        if (id >= rows.size() ||
            rows[id].acc->level() != d.level) {
            sim::fatal(name(), ": task '", d.label,
                       "' pinned to invalid accelerator ", id);
        }
        if (id != exclude_acc && rows[id].health != Health::Failed)
            return Route{id, d.level, d.kernelTemplate};
    }

    bool any_at_home = false;
    for (const auto &row : rows) {
        if (row.acc->level() == d.level) {
            any_at_home = true;
            break;
        }
    }
    if (!any_at_home) {
        sim::fatal(name(), ": no accelerator registered at level ",
                   acc::levelName(d.level), " for task '", d.label, "'");
    }

    // Degradation chain: siblings at the home level first, then
    // coarser levels that still have a bitstream for the kernel
    // family (a shortlist lost near-memory re-runs on-chip, etc.).
    std::vector<acc::Level> chain{d.level};
    if (cfg.crossLevelFailover) {
        if (d.level == acc::Level::NearMem ||
            d.level == acc::Level::NearStor) {
            chain.push_back(acc::Level::OnChip);
            chain.push_back(acc::Level::Cpu);
        } else if (d.level == acc::Level::OnChip) {
            chain.push_back(acc::Level::Cpu);
        }
    }

    auto pick = [&](acc::Level level, bool allow_suspect)
        -> std::uint32_t {
        std::uint32_t best = ~0u;
        double best_score = std::numeric_limits<double>::max();
        for (std::uint32_t i = 0; i < rows.size(); ++i) {
            const ProgressRow &row = rows[i];
            if (row.acc->level() != level || i == exclude_acc ||
                row.health == Health::Failed) {
                continue;
            }
            if (!allow_suspect && row.health == Health::Suspect)
                continue;
            double score;
            if (cfg.scheduling == SchedulingPolicy::EarliestFree) {
                // Expected availability: device reservation end plus
                // the estimated runtime of everything assigned here.
                score = static_cast<double>(
                            std::max(row.acc->freeAt(), now())) +
                        static_cast<double>(row.backlogEstimate);
                // Ties (all idle) fall back to assignment count.
                score += static_cast<double>(row.assigned) * 1e-3;
            } else {
                score = static_cast<double>(row.assigned);
            }
            if (score < best_score) {
                best_score = score;
                best = i;
            }
        }
        return best;
    };

    for (acc::Level level : chain) {
        std::string tmpl = level == d.level
                               ? d.kernelTemplate
                               : remapTemplate(d.kernelTemplate, level);
        if (tmpl.empty())
            continue;
        std::uint32_t id = pick(level, false);
        if (id == ~0u)
            id = pick(level, true);
        if (id != ~0u)
            return Route{id, level, std::move(tmpl)};
    }
    return Route{};
}

void
Gam::beginTransfers(TaskId tid, std::uint32_t exclude_acc)
{
    auto tit = tasks.find(tid);
    if (tit == tasks.end())
        return;
    TaskRecord &task = tit->second;

    if (blockedByJobOrder(task)) {
        jobOrderBlocked.push_back(tid);
        return;
    }

    ++task.attempts;
    if (task.attempts > cfg.maxTaskAttempts) {
        std::ostringstream why;
        why << "task '" << task.desc.label << "' lost "
            << cfg.maxTaskAttempts << " attempts (budget exhausted)";
        failJob(task.job, why.str());
        return;
    }
    if (task.attempts > 1)
        ++statTaskRetries;
    task.pollRetries = 0;
    task.deadline = 0;

    Route route = routeTask(task, exclude_acc);
    if (route.acc == ~0u) {
        std::ostringstream why;
        why << "no healthy accelerator for task '" << task.desc.label
            << "' (home level " << acc::levelName(task.desc.level)
            << ")";
        failJob(task.job, why.str());
        return;
    }
    if (route.level != task.desc.level) {
        ++statFailovers;
        sim::dtrace(now(), "GAM", "failover '", task.desc.label,
                    "' to ", rows[route.acc].acc->name());
    }

    task.state = TaskState::WaitingTransfer;
    task.assignedAcc = route.acc;
    task.runTemplate = std::move(route.kernelTemplate);
    ++rows[task.assignedAcc].assigned;
    // Charge the compute estimate to the row's backlog (the kernel
    // synthesis report gives the GAM this number, paper §III-A).
    task.backlogCharge = acc::findKernel(task.runTemplate)
                             .computeTicks(task.desc.work.ops);
    rows[task.assignedAcc].backlogEstimate += task.backlogCharge;

    std::vector<const InboundTransfer *> moves;
    for (const auto &in : task.desc.inbound) {
        if (in.bytes > 0)
            moves.push_back(&in);
    }
    if (moves.empty()) {
        enqueueTask(tid);
        return;
    }

    task.transfersRemaining = static_cast<std::uint32_t>(moves.size());
    const JobRecord &job = jobs.at(task.job);
    acc::Accelerator *to = rows[task.assignedAcc].acc;
    std::uint32_t stamp = task.attempts;

    for (const auto *in : moves) {
        acc::Accelerator *from = nullptr;
        acc::Level from_level = acc::Level::Cpu;
        if (in->from != InboundTransfer::fromHost) {
            const TaskRecord &producer =
                tasks.at(job.taskIds.at(in->from));
            if (producer.state != TaskState::Complete) {
                sim::panic(name(), ": inbound transfer from task that "
                           "is not complete");
            }
            from = rows[producer.assignedAcc].acc;
            from_level = from->level();
        }

        statDmaBytes += static_cast<double>(in->bytes);

        std::uint64_t bytes = in->bytes;
        auto do_dma = [this, tid, stamp, from, to, bytes](sim::Tick) {
            acc::Path path =
                pathProvider ? pathProvider(from, to) : acc::Path{};
            sim::Tick done =
                path.empty() ? now() : path.reserve(bytes, now());
            schedule(done, [this, tid, stamp] {
                TaskRecord *t = liveTask(tid, stamp);
                if (!t)
                    return;
                if (--t->transfersRemaining == 0)
                    enqueueTask(tid);
            }, sim::EventPriority::Default, "dmaDone");
        };

        // Toward near-data levels, coherent-cache copies must be
        // written back first (paper Fig. 6, steps 2b/2c).
        bool coherent_src = from_level == acc::Level::Cpu ||
                            from_level == acc::Level::OnChip;
        bool near_dst = to->level() == acc::Level::NearMem ||
                        to->level() == acc::Level::NearStor;
        if (coherent_src && near_dst && flushHook) {
            ++statFlushes;
            flushHook(bytes, do_dma);
        } else {
            do_dma(now());
        }
    }
}

void
Gam::enqueueTask(TaskId tid)
{
    TaskRecord &task = tasks.at(tid);
    ProgressRow &row = rows[task.assignedAcc];

    // The target was quarantined while this attempt's transfers were
    // in flight: release the charge and route the task elsewhere.
    if (row.health == Health::Failed) {
        releaseRowCharge(tid, task);
        beginTransfers(tid, task.assignedAcc);
        return;
    }

    task.state = TaskState::Queued;
    task.dispatchedAt = now();

    // Deadline-aware queue insertion: a task whose job carries an
    // earlier deadline hint jumps ahead of later-deadline (and
    // deadline-less) waiting tasks, but never preempts the running
    // one. Ties keep arrival order, so the all-default case (every
    // deadline 0) reproduces plain FIFO bitwise.
    sim::Tick dl = jobDeadlineHint(task);
    auto pos = row.waiting.end();
    if (dl != sim::maxTick) {
        for (auto it = row.waiting.begin(); it != row.waiting.end();
             ++it) {
            if (jobDeadlineHint(tasks.at(*it)) > dl) {
                pos = it;
                break;
            }
        }
    }
    row.waiting.insert(pos, tid);
    kick(task.assignedAcc);
}

sim::Tick
Gam::jobDeadlineHint(const TaskRecord &task) const
{
    auto it = jobs.find(task.job);
    if (it == jobs.end() || it->second.desc.deadline == 0)
        return sim::maxTick;
    return it->second.desc.deadline;
}

void
Gam::kick(std::uint32_t acc_id)
{
    ProgressRow &row = rows[acc_id];
    if (row.health == Health::Failed)
        return;
    if (row.currentTask || row.waiting.empty())
        return;
    TaskId tid = row.waiting.front();
    row.waiting.pop_front();
    dispatch(acc_id, tid);
}

void
Gam::dispatch(std::uint32_t acc_id, TaskId tid)
{
    ProgressRow &row = rows[acc_id];
    TaskRecord &task = tasks.at(tid);

    row.currentTask = tid;
    task.state = TaskState::Running;
    sim::dtrace(now(), "GAM", "dispatch '", task.desc.label, "' to ",
                row.acc->name());
    statQueueWait.sample(static_cast<double>(now() - task.dispatchedAt));
    task.dispatchedAt = now();
    ++statTasksDispatched;

    std::uint32_t stamp = task.attempts;

    // The launch command travels to the accelerator first.
    scheduleIn(cfg.commandLatency, [this, acc_id, tid, stamp] {
        TaskRecord *tp = liveTask(tid, stamp);
        if (!tp)
            return;
        TaskRecord &t = *tp;
        ProgressRow &r = rows[acc_id];
        acc::Accelerator &dev = *r.acc;

        dev.configure(acc::findKernel(t.runTemplate), cfg.reconfigDelay);

        sim::Tick estimate = static_cast<sim::Tick>(
            static_cast<double>(dev.estimateTicks(t.desc.work)) *
            cfg.estimateErrorFactor);
        r.estimatedDone = now() + estimate;

        bool interrupts = dev.level() == acc::Level::OnChip ||
                          dev.level() == acc::Level::Cpu;

        dev.execute(t.desc.work,
                    [this, tid, stamp, interrupts](sim::Tick at) {
            TaskRecord *done = liveTask(tid, stamp);
            if (!done)
                return;
            done->finishedAt = at;
            done->state = TaskState::DoneUnobserved;
            // On-chip accelerators interrupt the GAM directly;
            // near-data modules wait for a status poll.
            if (interrupts)
                completeTask(tid, at);
        });

        armWatchdog(tid);

        if (!interrupts) {
            t.pollEv = schedule(std::max(r.estimatedDone, now() + 1),
                                [this, tid, stamp] {
                                    pollStatus(tid, stamp);
                                },
                                sim::EventPriority::Control,
                                "statusPoll");
            t.pollPending = true;
        }
    }, sim::EventPriority::Control, "launch");
}

void
Gam::armWatchdog(TaskId tid)
{
    TaskRecord &task = tasks.at(tid);
    ProgressRow &row = rows[task.assignedAcc];

    // The deadline scales with the runtime estimate (and with how
    // wrong the estimate is allowed to be); it only ever declares a
    // loss once the device's own reservation has expired too, so a
    // long queue never trips it — only silence does.
    double est = static_cast<double>(
        row.acc->estimateTicks(task.desc.work));
    est *= std::max(cfg.estimateErrorFactor, 1.0);
    sim::Tick wait = std::max(
        cfg.watchdogMin,
        static_cast<sim::Tick>(cfg.watchdogSlack * est));
    task.deadline = now() + wait + cfg.reconfigDelay;

    std::uint32_t stamp = task.attempts;
    task.watchdogEv = schedule(task.deadline, [this, tid, stamp] {
        watchdogFire(tid, stamp);
    }, sim::EventPriority::Control, "watchdog");
    task.watchdogPending = true;
}

void
Gam::watchdogFire(TaskId tid, std::uint32_t stamp)
{
    TaskRecord *tp = liveTask(tid, stamp);
    if (!tp)
        return;
    TaskRecord &task = *tp;
    task.watchdogPending = false;

    if (task.state == TaskState::Complete ||
        task.state == TaskState::Failed) {
        return;
    }
    // The device already finished; the poll machinery (with its own
    // bounded retry budget) owns observation from here.
    if (task.state == TaskState::DoneUnobserved)
        return;

    ProgressRow &row = rows[task.assignedAcc];
    if (row.acc->freeAt() >= now()) {
        // The device still holds a live reservation covering this
        // task — contention, not silence. Re-arm past it.
        task.deadline = row.acc->freeAt() + cfg.watchdogMin;
        task.watchdogEv = schedule(task.deadline, [this, tid, stamp] {
            watchdogFire(tid, stamp);
        }, sim::EventPriority::Control, "watchdogRearm");
        task.watchdogPending = true;
        return;
    }

    // Reservation expired with no completion signal: the module went
    // silent under this task (crash or hang).
    ++statDeadlineMisses;
    failAttempt(tid, "watchdog deadline missed");
}

void
Gam::pollStatus(TaskId tid, std::uint32_t stamp)
{
    TaskRecord *tp = liveTask(tid, stamp);
    if (!tp)
        return;
    TaskRecord &task = *tp;
    task.pollPending = false;
    ++statPolls;
    ProgressRow &row = rows[task.assignedAcc];

    // A lost status packet (either direction) looks like a missing
    // response: retry with exponential backoff, bounded.
    if (faultInj && faultInj->dropPoll(row.acc->name())) {
        ++task.pollRetries;
        ++statPollRetries;
        if (task.pollRetries > cfg.maxPollRetries) {
            failAttempt(tid, "status-poll retry budget exhausted");
            return;
        }
        double backoff = static_cast<double>(cfg.statusPollLatency);
        for (std::uint32_t i = 0; i < task.pollRetries; ++i)
            backoff *= cfg.pollBackoffFactor;
        sim::Tick delay =
            std::max<sim::Tick>(static_cast<sim::Tick>(backoff), 1);
        task.pollEv = schedule(now() + delay, [this, tid, stamp] {
            pollStatus(tid, stamp);
        }, sim::EventPriority::Control, "statusRetry");
        task.pollPending = true;
        return;
    }

    if (task.state == TaskState::DoneUnobserved &&
        task.finishedAt <= now()) {
        // Status packet returns "finished" plus the output location;
        // completion is observed after the round trip.
        completeTask(tid, now() + cfg.statusPollLatency);
        return;
    }

    // Not finished: the device reports a new wait time (we use its
    // actual remaining reservation, which the device knows).
    sim::Tick remaining = row.acc->freeAt() > now()
                              ? row.acc->freeAt() - now()
                              : sim::tickPerUs;
    row.estimatedDone = now() + remaining;
    task.pollEv = schedule(
        now() + std::max<sim::Tick>(remaining, cfg.statusPollLatency),
        [this, tid, stamp] { pollStatus(tid, stamp); },
        sim::EventPriority::Control, "statusRepoll");
    task.pollPending = true;
}

void
Gam::failAttempt(TaskId tid, const char *why)
{
    TaskRecord &task = tasks.at(tid);
    disarmTask(task);
    std::uint32_t acc_id = task.assignedAcc;

    sim::dtrace(now(), "GAM", "attempt ", task.attempts, " of '",
                task.desc.label, "' lost on ", rows[acc_id].acc->name(),
                ": ", why);

    releaseRowCharge(tid, task);
    // strikeRow can quarantine the instance, re-route its queue, and
    // even fail this very job — re-find the task afterwards.
    strikeRow(acc_id);
    if (tasks.find(tid) != tasks.end())
        beginTransfers(tid, acc_id);
    kick(acc_id);
}

void
Gam::strikeRow(std::uint32_t acc_id)
{
    ProgressRow &row = rows[acc_id];
    ++row.strikes;
    if (row.health == Health::Healthy)
        row.health = Health::Suspect;
    if (row.health == Health::Failed ||
        row.strikes < cfg.quarantineStrikes) {
        return;
    }

    row.health = Health::Failed;
    row.quarantinedAt = now();
    ++statQuarantines;
    sim::dtrace(now(), "GAM", "quarantine ", row.acc->name());

    // Everything still queued here must find another home.
    std::deque<TaskId> drained;
    drained.swap(row.waiting);
    for (TaskId qt : drained) {
        auto it = tasks.find(qt);
        if (it == tasks.end())
            continue;
        TaskRecord &q = it->second;
        if (q.state != TaskState::Queued || q.assignedAcc != acc_id)
            continue;
        releaseRowCharge(qt, q);
        beginTransfers(qt, acc_id);
    }

    if (cfg.recoveryDelay > 0) {
        sim::Tick delay = std::max(cfg.recoveryDelay, cfg.reconfigDelay);
        scheduleIn(delay, [this, acc_id] { recoverRow(acc_id); },
                   sim::EventPriority::Control, "recoverAcc");
    }
}

void
Gam::recoverRow(std::uint32_t acc_id)
{
    ProgressRow &row = rows[acc_id];
    if (row.health != Health::Failed)
        return;
    row.downtime += now() - row.quarantinedAt;
    row.quarantinedAt = 0;
    // Probation: the module rejoins as Suspect with one strike left,
    // so another silent task sends it straight back to quarantine.
    row.health = Health::Suspect;
    row.strikes = cfg.quarantineStrikes - 1;
    row.acc->repair();
    ++statRecoveries;
    sim::dtrace(now(), "GAM", "recovered ", row.acc->name());
    kick(acc_id);
}

void
Gam::completeTask(TaskId tid, sim::Tick at)
{
    if (at > now()) {
        auto it = tasks.find(tid);
        if (it == tasks.end())
            return;
        std::uint32_t stamp = it->second.attempts;
        schedule(at, [this, tid, stamp] {
            if (liveTask(tid, stamp))
                completeTask(tid, now());
        }, sim::EventPriority::Control, "completeAt");
        return;
    }

    auto it = tasks.find(tid);
    if (it == tasks.end())
        return;
    TaskRecord &task = it->second;
    if (task.state == TaskState::Complete ||
        task.state == TaskState::Failed) {
        return;
    }
    disarmTask(task);
    task.state = TaskState::Complete;
    sim::dtrace(now(), "GAM", "complete '", task.desc.label, "'");

    if (taskObserver) {
        TaskEvent ev;
        ev.label = task.desc.label;
        ev.accName = rows[task.assignedAcc].acc->name();
        ev.level = task.desc.level;
        ev.dispatched = task.dispatchedAt;
        ev.finished = task.finishedAt;
        ev.observed = now();
        taskObserver(ev);
    }

    ProgressRow &row = rows[task.assignedAcc];
    if (row.assigned > 0)
        --row.assigned;
    row.backlogEstimate -= std::min(row.backlogEstimate,
                                    task.backlogCharge);
    // A completed task clears accumulated suspicion.
    row.strikes = 0;
    if (row.health == Health::Suspect)
        row.health = Health::Healthy;
    if (row.currentTask && *row.currentTask == tid) {
        row.currentTask.reset();
        kick(task.assignedAcc);
    }

    // Wake dependents. Copy first: a woken dependent can fail the job
    // (no healthy target), erasing this very record mid-loop.
    JobId jid = task.job;
    std::vector<TaskId> dependents = task.dependents;
    for (TaskId dep : dependents) {
        auto dit = tasks.find(dep);
        if (dit == tasks.end())
            continue;
        if (--dit->second.depsRemaining == 0)
            beginTransfers(dep);
    }

    // Job bookkeeping (the job may have failed during the wake).
    auto jit = jobs.find(jid);
    if (jit == jobs.end())
        return;
    JobRecord &job = jit->second;
    if (job.failed)
        return;
    if (--job.remaining == 0) {
        ++statJobsDone;
        --activeJobs;
        statJobLatency.sample(static_cast<double>(now() - job.submitted));
        if (job.desc.onComplete)
            job.desc.onComplete(now());
        finishJob(jid);
    }
}

void
Gam::failJob(JobId jid, const std::string &why)
{
    auto jit = jobs.find(jid);
    if (jit == jobs.end())
        return;
    JobRecord &job = jit->second;
    if (job.failed)
        return;
    job.failed = true;

    sim::warn(name(), ": job '", job.desc.label, "' failed: ", why);

    std::vector<std::uint32_t> kicks;
    for (TaskId tid : job.taskIds) {
        auto it = tasks.find(tid);
        if (it == tasks.end())
            continue;
        TaskRecord &t = it->second;
        if (t.state == TaskState::Complete ||
            t.state == TaskState::Failed) {
            continue;
        }
        disarmTask(t);
        if (t.state == TaskState::Queued && t.assignedAcc != ~0u) {
            auto &w = rows[t.assignedAcc].waiting;
            w.erase(std::remove(w.begin(), w.end(), tid), w.end());
        }
        if (t.assignedAcc != ~0u &&
            t.state != TaskState::WaitingDeps) {
            ProgressRow &row = rows[t.assignedAcc];
            if (row.assigned > 0)
                --row.assigned;
            row.backlogEstimate -= std::min(row.backlogEstimate,
                                            t.backlogCharge);
            if (row.currentTask && *row.currentTask == tid) {
                row.currentTask.reset();
                kicks.push_back(t.assignedAcc);
            }
        }
        t.state = TaskState::Failed;
        // Stamp-bump: orphan every closure of the dead attempt.
        ++t.attempts;
    }

    // Drop this job's tasks from the job-order parking lot.
    jobOrderBlocked.erase(
        std::remove_if(jobOrderBlocked.begin(), jobOrderBlocked.end(),
                       [&](TaskId t) {
                           auto i = tasks.find(t);
                           return i == tasks.end() ||
                                  i->second.job == jid;
                       }),
        jobOrderBlocked.end());

    ++statJobsFailed;
    --activeJobs;
    if (job.desc.onFailed) {
        job.desc.onFailed(now());
    } else {
        sim::warn(name(), ": job '", job.desc.label,
                  "' has no onFailed handler; failure only visible "
                  "through jobsFailed()");
    }
    finishJob(jid);

    for (std::uint32_t acc_id : kicks)
        kick(acc_id);
}

void
Gam::finishJob(JobId jid)
{
    auto jit = jobs.find(jid);
    if (jit == jobs.end())
        return;
    // Release the records — completed jobs no longer accumulate
    // unbounded state (and their onComplete captures) for the
    // lifetime of the simulation.
    for (TaskId tid : jit->second.taskIds)
        tasks.erase(tid);
    jobs.erase(jit);

    // Advance the serialization frontier past finished jobs.
    while (oldestActiveJob < nextJobId &&
           jobs.find(oldestActiveJob) == jobs.end()) {
        ++oldestActiveJob;
    }
    releaseBlockedTasks();
}

double
Gam::availability(acc::Level level) const
{
    if (now() == 0)
        return 1.0;
    double down = 0;
    std::uint32_t n = 0;
    for (const auto &row : rows) {
        if (row.acc->level() != level)
            continue;
        ++n;
        down += static_cast<double>(row.downtime);
        if (row.health == Health::Failed)
            down += static_cast<double>(now() - row.quarantinedAt);
    }
    if (n == 0)
        return 1.0;
    return 1.0 - down / (static_cast<double>(n) *
                         static_cast<double>(now()));
}

void
Gam::dumpProgress(std::ostream &os) const
{
    auto health_name = [](Health h) {
        switch (h) {
          case Health::Healthy:
            return "Healthy";
          case Health::Suspect:
            return "Suspect";
          case Health::Failed:
            return "Failed";
        }
        return "?";
    };

    os << name() << " progress table @ tick " << now() << " ("
       << activeJobs << " active job(s)):\n";
    for (std::uint32_t i = 0; i < rows.size(); ++i) {
        const ProgressRow &row = rows[i];
        os << "  acc[" << i << "] " << row.acc->name() << " ("
           << acc::levelName(row.acc->level()) << ") health="
           << health_name(row.health) << " strikes=" << row.strikes
           << " assigned=" << row.assigned << " waiting="
           << row.waiting.size();
        if (row.currentTask) {
            os << " current=task#" << *row.currentTask;
            auto it = tasks.find(*row.currentTask);
            if (it != tasks.end()) {
                os << " '" << it->second.desc.label << "' ("
                   << taskStateName(it->second.state) << ", attempt "
                   << it->second.attempts << ", deadline "
                   << it->second.deadline << ")";
            }
        }
        os << "\n";
    }
    for (const auto &[jid, job] : jobs) {
        os << "  job#" << jid << " '" << job.desc.label
           << "' remaining=" << job.remaining
           << (job.failed ? " FAILED" : "") << "\n";
        for (TaskId tid : job.taskIds) {
            auto it = tasks.find(tid);
            if (it == tasks.end())
                continue;
            const TaskRecord &t = it->second;
            if (t.state == TaskState::Complete)
                continue;
            os << "    task#" << tid << " '" << t.desc.label << "' "
               << taskStateName(t.state) << " attempts=" << t.attempts
               << " acc=";
            if (t.assignedAcc == ~0u)
                os << "-";
            else
                os << rows[t.assignedAcc].acc->name();
            os << " deadline=" << t.deadline << "\n";
        }
    }
}

void
Gam::reportWedge(const std::string &who) const
{
    std::ostringstream os;
    dumpProgress(os);
    sim::panic(who, ": event queue drained with ", activeJobs,
               " job(s) still pending — the simulated system wedged. ",
               "GAM state:\n", os.str());
}

} // namespace reach::gam
