#include "buffer_table.hh"

#include "sim/logging.hh"

namespace reach::gam
{

void
BufferTable::setCapacity(acc::Level level, std::uint64_t bytes)
{
    spaces[level].capacity = bytes;
}

std::uint64_t
BufferTable::capacity(acc::Level level) const
{
    auto it = spaces.find(level);
    return it == spaces.end() ? 0 : it->second.capacity;
}

BufferTable::LevelSpace &
BufferTable::space(acc::Level level)
{
    return spaces[level];
}

const BufferTable::LevelSpace &
BufferTable::space(acc::Level level) const
{
    static const LevelSpace empty{};
    auto it = spaces.find(level);
    return it == spaces.end() ? empty : it->second;
}

const BufferRecord &
BufferTable::allocate(acc::Level level, std::uint64_t bytes,
                      const std::string &name)
{
    if (bytes == 0)
        sim::fatal("buffer '", name, "' has zero size");

    LevelSpace &s = space(level);
    if (s.top + bytes > s.capacity) {
        sim::fatal("buffer '", name, "' (", bytes,
                   " B) exceeds the remaining capacity at level ",
                   acc::levelName(level), " (", s.capacity - s.top,
                   " B left)");
    }

    BufferRecord rec;
    rec.id = nextId++;
    rec.level = level;
    rec.base = s.top;
    rec.bytes = bytes;
    rec.name = name;

    s.top += bytes;
    s.used += bytes;

    auto [it, ok] = records.emplace(rec.id, std::move(rec));
    (void)ok;
    return it->second;
}

const BufferRecord *
BufferTable::find(BufferId id) const
{
    auto it = records.find(id);
    return it == records.end() ? nullptr : &it->second;
}

void
BufferTable::release(BufferId id)
{
    auto it = records.find(id);
    if (it == records.end())
        return;
    space(it->second.level).used -= it->second.bytes;
    records.erase(it);
}

std::uint64_t
BufferTable::usedBytes(acc::Level level) const
{
    return space(level).used;
}

} // namespace reach::gam
