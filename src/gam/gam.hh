/**
 * @file
 * The Global Accelerator Manager (paper §II-D, Fig. 5/6).
 *
 * A hardware unit on the on-chip NoC that
 *  1. receives job requests from cores (ACC command packets),
 *  2. distributes tasks to available accelerators per level,
 *  3. tracks running/waiting tasks in a progress table with
 *     estimated wait times,
 *  4. initiates inter-level data transfers (forced cache writebacks
 *     toward near-memory, PCIe pushes toward near-storage), and
 *  5. interrupts the host when a job completes.
 *
 * Near-memory and near-storage modules cannot send acknowledgements,
 * so the GAM *polls* them with status packets when a task's estimated
 * runtime elapses; on-chip accelerators interrupt directly.
 */

#ifndef REACH_GAM_GAM_HH
#define REACH_GAM_GAM_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "acc/accelerator.hh"
#include "acc/path.hh"
#include "gam/buffer_table.hh"
#include "gam/task.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace reach::gam
{

/** How the GAM picks an instance for an unpinned task. */
enum class SchedulingPolicy
{
    /** Fewest tasks assigned (count-based, cheap). */
    LeastLoaded,
    /**
     * Earliest expected availability, using the per-task runtime
     * estimates the progress table already tracks (Fig. 5e's
     * "estimated wait time" put to work for placement).
     */
    EarliestFree,
};

struct GamConfig
{
    /** ACC command packet delivery latency (NoC + decode). */
    sim::Tick commandLatency = 100'000; // 100 ns
    /** Status request/response round trip to a near-data module. */
    sim::Tick statusPollLatency = 400'000; // 400 ns
    /** Multiplier on runtime estimates (ablation: poll too early). */
    double estimateErrorFactor = 1.0;
    /**
     * Dispatch tasks of a later job before the previous job fully
     * completes, when dependencies allow (paper §II-D). Turning this
     * off serializes jobs — the ablation baseline.
     */
    bool crossJobPipelining = true;
    /**
     * Partial-reconfiguration delay charged when a dispatch must
     * load a different bitstream. The paper argues sub-millisecond
     * reconfiguration and charges zero; the ablation sweeps this.
     */
    sim::Tick reconfigDelay = 0;
    /** Instance selection for unpinned tasks. */
    SchedulingPolicy scheduling = SchedulingPolicy::LeastLoaded;
};

/**
 * Builds the data path for one inter-level transfer. Provided by the
 * system builder, which knows the machine's links.
 *
 * @param from  Producing accelerator (null: data starts at the host).
 * @param to    Consuming accelerator (null: data returns to host).
 */
using PathProvider = std::function<acc::Path(
    const acc::Accelerator *from, const acc::Accelerator *to)>;

/**
 * Forced cache writeback hook: flush @p bytes worth of producer
 * output from the coherent cache, then call the continuation.
 */
using FlushHook =
    std::function<void(std::uint64_t bytes,
                       std::function<void(sim::Tick)> done)>;

class Gam : public sim::SimObject
{
  public:
    Gam(sim::Simulator &sim, const std::string &name,
        const GamConfig &cfg);

    /** Register an accelerator; returns its accId (progress row). */
    std::uint32_t addAccelerator(acc::Accelerator &acc);

    /** All registered instances at @p level, in accId order. */
    std::vector<std::uint32_t> acceleratorsAt(acc::Level level) const;

    acc::Accelerator &accelerator(std::uint32_t id)
    {
        return *rows.at(id).acc;
    }

    std::size_t numAccelerators() const { return rows.size(); }

    void setPathProvider(PathProvider provider)
    {
        pathProvider = std::move(provider);
    }

    void setFlushHook(FlushHook hook) { flushHook = std::move(hook); }

    /**
     * Submit a job (step 5a: ACC command packets through the GAM
     * driver). Returns the job id. Task dispatch begins after the
     * command latency.
     */
    JobId submitJob(JobDesc job);

    /** True when every submitted job has completed. */
    bool idle() const { return activeJobs == 0; }

    std::uint64_t jobsCompleted() const
    {
        return static_cast<std::uint64_t>(statJobsDone.value());
    }
    std::uint64_t tasksDispatched() const
    {
        return static_cast<std::uint64_t>(statTasksDispatched.value());
    }
    std::uint64_t statusPolls() const
    {
        return static_cast<std::uint64_t>(statPolls.value());
    }
    std::uint64_t bytesMoved() const
    {
        return static_cast<std::uint64_t>(statDmaBytes.value());
    }

    const GamConfig &config() const { return cfg; }

    /** Fig. 5c: buffer ids and their address boundaries. */
    BufferTable &buffers() { return bufferTable; }
    const BufferTable &buffers() const { return bufferTable; }

    /** One completed task, for timeline tracing. */
    struct TaskEvent
    {
        std::string label;
        std::string accName;
        acc::Level level;
        /** When the GAM handed the task to the accelerator. */
        sim::Tick dispatched = 0;
        /** When the device finished. */
        sim::Tick finished = 0;
        /** When the GAM observed completion (poll round trip). */
        sim::Tick observed = 0;
    };

    /** Observe every task completion (timeline export, tests). */
    void
    setTaskObserver(std::function<void(const TaskEvent &)> obs)
    {
        taskObserver = std::move(obs);
    }

  private:
    /** One task instance inside the manager. */
    struct TaskRecord
    {
        TaskDesc desc;
        JobId job = 0;
        TaskState state = TaskState::WaitingDeps;
        std::uint32_t depsRemaining = 0;
        std::uint32_t transfersRemaining = 0;
        /** Tasks (global ids) waiting on this one. */
        std::vector<TaskId> dependents;
        std::uint32_t assignedAcc = ~0u;
        sim::Tick dispatchedAt = 0;
        sim::Tick finishedAt = 0;
        /** Runtime estimate charged to the row's backlog. */
        sim::Tick backlogCharge = 0;
    };

    struct JobRecord
    {
        JobDesc desc;
        std::vector<TaskId> taskIds;
        std::uint32_t remaining = 0;
        sim::Tick submitted = 0;
    };

    /** Progress-table row (paper Fig. 5e). */
    struct ProgressRow
    {
        acc::Accelerator *acc = nullptr;
        std::optional<TaskId> currentTask;
        sim::Tick estimatedDone = 0;
        std::deque<TaskId> waiting;
        /** Tasks assigned here but not yet complete (incl. pending
         *  transfers); keeps load balancing honest. */
        std::uint32_t assigned = 0;
        /** Sum of runtime estimates of assigned, incomplete tasks. */
        sim::Tick backlogEstimate = 0;
    };

    /** Move a task whose deps finished into its transfer phase. */
    void startTransfers(TaskId tid);

    /** Enqueue a transfer-complete task at its target accelerator. */
    void enqueueTask(TaskId tid);

    /** If the row is free, dispatch its next waiting task. */
    void kick(std::uint32_t acc_id);

    void dispatch(std::uint32_t acc_id, TaskId tid);

    /** Status-packet poll for a near-data accelerator (Fig. 5b). */
    void pollStatus(std::uint32_t acc_id, TaskId tid);

    /** Mark the task observed-complete and propagate. */
    void completeTask(TaskId tid, sim::Tick at);

    /** Pick a free (or least-loaded) instance for a task. */
    std::uint32_t chooseAccelerator(const TaskRecord &task) const;

    /** Whether dispatch of @p tid is blocked by job serialization. */
    bool blockedByJobOrder(const TaskRecord &task) const;

    /** Try to start tasks that job-serialization had been blocking. */
    void releaseBlockedTasks();

    GamConfig cfg;
    PathProvider pathProvider;
    FlushHook flushHook;
    BufferTable bufferTable;
    std::function<void(const TaskEvent &)> taskObserver;

    std::vector<ProgressRow> rows;
    std::map<TaskId, TaskRecord> tasks;
    std::map<JobId, JobRecord> jobs;
    /** Tasks waiting for job-serialization (pipelining off). */
    std::vector<TaskId> jobOrderBlocked;
    TaskId nextTaskId = 1;
    JobId nextJobId = 1;
    JobId oldestActiveJob = 1;
    std::uint32_t activeJobs = 0;

    sim::Scalar statJobsDone;
    sim::Scalar statTasksDispatched;
    sim::Scalar statPolls;
    sim::Scalar statDmaBytes;
    sim::Scalar statFlushes;
    sim::Distribution statJobLatency;
    sim::Distribution statQueueWait;
};

} // namespace reach::gam

#endif // REACH_GAM_GAM_HH
