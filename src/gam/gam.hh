/**
 * @file
 * The Global Accelerator Manager (paper §II-D, Fig. 5/6).
 *
 * A hardware unit on the on-chip NoC that
 *  1. receives job requests from cores (ACC command packets),
 *  2. distributes tasks to available accelerators per level,
 *  3. tracks running/waiting tasks in a progress table with
 *     estimated wait times,
 *  4. initiates inter-level data transfers (forced cache writebacks
 *     toward near-memory, PCIe pushes toward near-storage), and
 *  5. interrupts the host when a job completes.
 *
 * Near-memory and near-storage modules cannot send acknowledgements,
 * so the GAM *polls* them with status packets when a task's estimated
 * runtime elapses; on-chip accelerators interrupt directly.
 *
 * Fault tolerance (DESIGN.md §4f): every dispatched task carries a
 * watchdog deadline derived from the progress table's runtime
 * estimate; lost status polls are retried with exponential backoff
 * under a bounded budget; a module that goes silent accumulates
 * strikes (Healthy -> Suspect -> Failed), is quarantined, and its
 * tasks are re-dispatched to a sibling instance or — when the whole
 * level is down — to a coarser level with a re-mapped kernel
 * bitstream. Jobs whose retry budget is exhausted complete with an
 * explicit failure interrupt instead of wedging the simulation.
 */

#ifndef REACH_GAM_GAM_HH
#define REACH_GAM_GAM_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <vector>

#include "acc/accelerator.hh"
#include "acc/path.hh"
#include "fault/fault.hh"
#include "gam/buffer_table.hh"
#include "gam/task.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace reach::gam
{

/** How the GAM picks an instance for an unpinned task. */
enum class SchedulingPolicy
{
    /** Fewest tasks assigned (count-based, cheap). */
    LeastLoaded,
    /**
     * Earliest expected availability, using the per-task runtime
     * estimates the progress table already tracks (Fig. 5e's
     * "estimated wait time" put to work for placement).
     */
    EarliestFree,
};

struct GamConfig
{
    /** ACC command packet delivery latency (NoC + decode). */
    sim::Tick commandLatency = 100'000; // 100 ns
    /** Status request/response round trip to a near-data module. */
    sim::Tick statusPollLatency = 400'000; // 400 ns
    /** Multiplier on runtime estimates (ablation: poll too early). */
    double estimateErrorFactor = 1.0;
    /**
     * Dispatch tasks of a later job before the previous job fully
     * completes, when dependencies allow (paper §II-D). Turning this
     * off serializes jobs — the ablation baseline.
     */
    bool crossJobPipelining = true;
    /**
     * Partial-reconfiguration delay charged when a dispatch must
     * load a different bitstream. The paper argues sub-millisecond
     * reconfiguration and charges zero; the ablation sweeps this.
     */
    sim::Tick reconfigDelay = 0;
    /** Instance selection for unpinned tasks. */
    SchedulingPolicy scheduling = SchedulingPolicy::LeastLoaded;

    // ----- Fault tolerance (DESIGN.md §4f) -----

    /**
     * Watchdog deadline multiplier on the task's runtime estimate.
     * The deadline only declares a task lost once the device's own
     * reservation has also expired, so contention never trips it;
     * the slack just avoids pointless early wakeups.
     */
    double watchdogSlack = 8.0;
    /** Floor on any watchdog deadline (covers tiny tasks). */
    sim::Tick watchdogMin = 50 * sim::tickPerUs;
    /** Lost status polls tolerated per task attempt before the
     *  attempt itself is declared lost. */
    std::uint32_t maxPollRetries = 6;
    /** Poll retry delay multiplier (exponential backoff). */
    double pollBackoffFactor = 2.0;
    /** Dispatch attempts per task (first try included) before the
     *  owning job fails with an explicit status. */
    std::uint32_t maxTaskAttempts = 4;
    /** Watchdog strikes before an instance is quarantined. */
    std::uint32_t quarantineStrikes = 2;
    /** Re-dispatch to a coarser level when a task's home level has
     *  no healthy instance left (NearMem/NearStor -> OnChip -> CPU). */
    bool crossLevelFailover = true;
    /**
     * Delay after quarantine before a module is probed again
     * (reset + reload bitstream). 0 disables recovery; otherwise the
     * effective delay is max(recoveryDelay, reconfigDelay).
     */
    sim::Tick recoveryDelay = 0;

    /** Fatal on malformed values (zero latencies, bad factors). */
    void validate(const std::string &who) const;
};

/**
 * Builds the data path for one inter-level transfer. Provided by the
 * system builder, which knows the machine's links.
 *
 * @param from  Producing accelerator (null: data starts at the host).
 * @param to    Consuming accelerator (null: data returns to host).
 */
using PathProvider = std::function<acc::Path(
    const acc::Accelerator *from, const acc::Accelerator *to)>;

/**
 * Forced cache writeback hook: flush @p bytes worth of producer
 * output from the coherent cache, then call the continuation.
 */
using FlushHook =
    std::function<void(std::uint64_t bytes,
                       std::function<void(sim::Tick)> done)>;

class Gam : public sim::SimObject
{
  public:
    Gam(sim::Simulator &sim, const std::string &name,
        const GamConfig &cfg);

    /** Register an accelerator; returns its accId (progress row). */
    std::uint32_t addAccelerator(acc::Accelerator &acc);

    /** All registered instances at @p level, in accId order. */
    std::vector<std::uint32_t> acceleratorsAt(acc::Level level) const;

    acc::Accelerator &accelerator(std::uint32_t id)
    {
        return *rows.at(id).acc;
    }

    std::size_t numAccelerators() const { return rows.size(); }

    void setPathProvider(PathProvider provider)
    {
        pathProvider = std::move(provider);
    }

    void setFlushHook(FlushHook hook) { flushHook = std::move(hook); }

    /** Status polls consult the injector for lost packets. */
    void setFaultInjector(fault::FaultInjector *inj) { faultInj = inj; }

    /**
     * Submit a job (step 5a: ACC command packets through the GAM
     * driver). Returns the job id. Task dispatch begins after the
     * command latency.
     */
    JobId submitJob(JobDesc job);

    /** True when every submitted job has completed or failed. */
    bool idle() const { return activeJobs == 0; }

    std::uint64_t jobsCompleted() const
    {
        return static_cast<std::uint64_t>(statJobsDone.value());
    }
    std::uint64_t jobsFailed() const
    {
        return static_cast<std::uint64_t>(statJobsFailed.value());
    }
    std::uint64_t tasksDispatched() const
    {
        return static_cast<std::uint64_t>(statTasksDispatched.value());
    }
    std::uint64_t statusPolls() const
    {
        return static_cast<std::uint64_t>(statPolls.value());
    }
    std::uint64_t bytesMoved() const
    {
        return static_cast<std::uint64_t>(statDmaBytes.value());
    }
    /** Re-dispatches after a lost attempt (any level). */
    std::uint64_t taskRetries() const
    {
        return static_cast<std::uint64_t>(statTaskRetries.value());
    }
    /** Re-dispatches that landed on a different level. */
    std::uint64_t failovers() const
    {
        return static_cast<std::uint64_t>(statFailovers.value());
    }
    /** Watchdog deadlines that declared an attempt lost. */
    std::uint64_t deadlineMisses() const
    {
        return static_cast<std::uint64_t>(statDeadlineMisses.value());
    }
    /** Status polls re-sent after a lost packet. */
    std::uint64_t pollRetries() const
    {
        return static_cast<std::uint64_t>(statPollRetries.value());
    }
    std::uint64_t quarantines() const
    {
        return static_cast<std::uint64_t>(statQuarantines.value());
    }
    std::uint64_t recoveries() const
    {
        return static_cast<std::uint64_t>(statRecoveries.value());
    }

    /** Whether the instance is currently quarantined. */
    bool isQuarantined(std::uint32_t acc_id) const
    {
        return rows.at(acc_id).health == Health::Failed;
    }

    /**
     * Fraction of instance-time the level's modules were available
     * (not quarantined) over [0, now]. 1.0 with no faults.
     */
    double availability(acc::Level level) const;

    /**
     * Dump the progress table and every pending job/task — the
     * simulator-hang diagnostic (task states, owners, deadlines).
     */
    void dumpProgress(std::ostream &os) const;

    /**
     * Fail loudly (panic with the dumped progress table) when a run
     * wedges: the event queue drained while jobs were still pending.
     */
    [[noreturn]] void reportWedge(const std::string &who) const;

    const GamConfig &config() const { return cfg; }

    /** Fig. 5c: buffer ids and their address boundaries. */
    BufferTable &buffers() { return bufferTable; }
    const BufferTable &buffers() const { return bufferTable; }

    /** One completed task, for timeline tracing. */
    struct TaskEvent
    {
        std::string label;
        std::string accName;
        acc::Level level;
        /** When the GAM handed the task to the accelerator. */
        sim::Tick dispatched = 0;
        /** When the device finished. */
        sim::Tick finished = 0;
        /** When the GAM observed completion (poll round trip). */
        sim::Tick observed = 0;
    };

    /** Observe every task completion (timeline export, tests). */
    void
    setTaskObserver(std::function<void(const TaskEvent &)> obs)
    {
        taskObserver = std::move(obs);
    }

  private:
    /** Accelerator health as the GAM's watchdogs see it. */
    enum class Health
    {
        Healthy,
        /** Struck at least once; deprioritized for new work. */
        Suspect,
        /** Quarantined: receives no work until recovery. */
        Failed,
    };

    /** One task instance inside the manager. */
    struct TaskRecord
    {
        TaskDesc desc;
        JobId job = 0;
        TaskState state = TaskState::WaitingDeps;
        std::uint32_t depsRemaining = 0;
        std::uint32_t transfersRemaining = 0;
        /** Tasks (global ids) waiting on this one. */
        std::vector<TaskId> dependents;
        std::uint32_t assignedAcc = ~0u;
        sim::Tick dispatchedAt = 0;
        sim::Tick finishedAt = 0;
        /** Runtime estimate charged to the row's backlog. */
        sim::Tick backlogCharge = 0;

        /**
         * Dispatch attempts so far; doubles as the staleness stamp
         * every scheduled closure checks, so events belonging to an
         * abandoned attempt become no-ops.
         */
        std::uint32_t attempts = 0;
        /** Lost status polls in the current attempt. */
        std::uint32_t pollRetries = 0;
        /** Kernel template actually dispatched (failover re-map). */
        std::string runTemplate;
        /** Watchdog deadline of the current attempt (0 = unarmed). */
        sim::Tick deadline = 0;
        std::uint64_t watchdogEv = 0;
        bool watchdogPending = false;
        std::uint64_t pollEv = 0;
        bool pollPending = false;
    };

    struct JobRecord
    {
        JobDesc desc;
        std::vector<TaskId> taskIds;
        std::uint32_t remaining = 0;
        sim::Tick submitted = 0;
        bool failed = false;
    };

    /** Progress-table row (paper Fig. 5e). */
    struct ProgressRow
    {
        acc::Accelerator *acc = nullptr;
        std::optional<TaskId> currentTask;
        sim::Tick estimatedDone = 0;
        std::deque<TaskId> waiting;
        /** Tasks assigned here but not yet complete (incl. pending
         *  transfers); keeps load balancing honest. */
        std::uint32_t assigned = 0;
        /** Sum of runtime estimates of assigned, incomplete tasks. */
        sim::Tick backlogEstimate = 0;

        Health health = Health::Healthy;
        /** Watchdog strikes since the last completed task. */
        std::uint32_t strikes = 0;
        sim::Tick quarantinedAt = 0;
        /** Accumulated ticks spent quarantined (closed intervals). */
        sim::Tick downtime = 0;
    };

    /** Where routeTask() decided a task attempt should run. */
    struct Route
    {
        std::uint32_t acc = ~0u;
        acc::Level level = acc::Level::OnChip;
        std::string kernelTemplate;
    };

    /** The task record iff it exists and @p stamp is its current
     *  attempt — the guard every scheduled closure goes through. */
    TaskRecord *liveTask(TaskId tid, std::uint32_t stamp);

    /** Start (or restart) a task attempt: route, transfer, enqueue. */
    void beginTransfers(TaskId tid, std::uint32_t exclude_acc = ~0u);

    /** Enqueue a transfer-complete task at its target accelerator. */
    void enqueueTask(TaskId tid);

    /** The owning job's deadline hint (maxTick when unset). */
    sim::Tick jobDeadlineHint(const TaskRecord &task) const;

    /** If the row is free, dispatch its next waiting task. */
    void kick(std::uint32_t acc_id);

    void dispatch(std::uint32_t acc_id, TaskId tid);

    /** Status-packet poll for a near-data accelerator (Fig. 5b). */
    void pollStatus(TaskId tid, std::uint32_t stamp);

    /** Mark the task observed-complete and propagate. */
    void completeTask(TaskId tid, sim::Tick at);

    /** Arm the per-attempt watchdog at dispatch time. */
    void armWatchdog(TaskId tid);
    void watchdogFire(TaskId tid, std::uint32_t stamp);
    /** Cancel any pending watchdog/poll events of the record. */
    void disarmTask(TaskRecord &task);

    /** The current attempt is lost: strike the row, re-dispatch. */
    void failAttempt(TaskId tid, const char *why);

    /** Record a watchdog strike; quarantine at the threshold. */
    void strikeRow(std::uint32_t acc_id);
    void recoverRow(std::uint32_t acc_id);

    /** Release the row accounting an attempt charged. */
    void releaseRowCharge(TaskId tid, TaskRecord &task);

    /** The kernel family's template for @p level, or "" if none. */
    std::string remapTemplate(const std::string &tmpl,
                              acc::Level level) const;

    /** Pick an instance (and kernel template) for a task attempt. */
    Route routeTask(const TaskRecord &task, std::uint32_t exclude_acc);

    /** Fail the whole job: explicit status, records released. */
    void failJob(JobId jid, const std::string &why);

    /** Erase the job's records and advance the serialization
     *  frontier (jobs no longer accumulate for the sim lifetime). */
    void finishJob(JobId jid);

    /** Whether dispatch of @p tid is blocked by job serialization. */
    bool blockedByJobOrder(const TaskRecord &task) const;

    /** Try to start tasks that job-serialization had been blocking. */
    void releaseBlockedTasks();

    GamConfig cfg;
    PathProvider pathProvider;
    FlushHook flushHook;
    BufferTable bufferTable;
    std::function<void(const TaskEvent &)> taskObserver;
    fault::FaultInjector *faultInj = nullptr;

    std::vector<ProgressRow> rows;
    std::map<TaskId, TaskRecord> tasks;
    std::map<JobId, JobRecord> jobs;
    /** Tasks waiting for job-serialization (pipelining off). */
    std::vector<TaskId> jobOrderBlocked;
    TaskId nextTaskId = 1;
    JobId nextJobId = 1;
    JobId oldestActiveJob = 1;
    std::uint32_t activeJobs = 0;

    sim::Scalar statJobsDone;
    sim::Scalar statJobsFailed;
    sim::Scalar statTasksDispatched;
    sim::Scalar statPolls;
    sim::Scalar statDmaBytes;
    sim::Scalar statFlushes;
    sim::Scalar statTaskRetries;
    sim::Scalar statFailovers;
    sim::Scalar statDeadlineMisses;
    sim::Scalar statPollRetries;
    sim::Scalar statQuarantines;
    sim::Scalar statRecoveries;
    sim::Distribution statJobLatency;
    sim::Distribution statQueueWait;
};

} // namespace reach::gam

#endif // REACH_GAM_GAM_HH
