/**
 * @file
 * Jobs and tasks as the GAM sees them (paper Fig. 5).
 *
 * A *job* is what a host thread submits ("run CNN inference on this
 * batch"); the GAM breaks it into *tasks*, each bound to a compute
 * level (and optionally to one specific accelerator instance, e.g.
 * the AIM module holding a particular centroid partition). Tasks can
 * depend on earlier tasks of the same job — the GAM moves the
 * producer's output to the consumer's level before dispatch — and on
 * tasks of earlier jobs when the runtime encodes stream backpressure.
 */

#ifndef REACH_GAM_TASK_HH
#define REACH_GAM_TASK_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "acc/accelerator.hh"
#include "sim/types.hh"

namespace reach::gam
{

using TaskId = std::uint64_t;
using JobId = std::uint64_t;

/** Data the GAM must move to a task's level before it can start. */
struct InboundTransfer
{
    /** Sentinel: the data comes from the host (CPU side). */
    static constexpr std::size_t fromHost = ~std::size_t(0);

    /**
     * Producing task as an index into the same job's task list, or
     * fromHost when the host supplies the data (e.g. a query batch).
     */
    std::size_t from = fromHost;
    std::uint64_t bytes = 0;
};

struct TaskDesc
{
    /** Human-readable label ("Conv-Relu1", "knn0"). */
    std::string label;
    /** Kernel template id, e.g. "CNN-VU9P" (see kernelCatalog()). */
    std::string kernelTemplate;
    acc::Level level = acc::Level::OnChip;
    acc::WorkUnit work;
    /** Tasks (same job) that must complete first. */
    std::vector<std::size_t> deps;
    /** Data movements required before dispatch. */
    std::vector<InboundTransfer> inbound;
    /** Pin to one accelerator instance at the level (partitioning). */
    std::optional<std::uint32_t> pinnedAcc;
};

struct JobDesc
{
    /** Software thread id (tasks of a thread share ordering). */
    std::uint32_t threadId = 0;
    std::string label;
    /**
     * Deadline hint (absolute tick, 0 = none). When accelerator
     * queues back up, tasks of jobs with earlier deadlines dispatch
     * first; jobs without a deadline keep strict submission order
     * behind every deadlined job. The service layer stamps each
     * batch with its most urgent member request's SLO deadline.
     */
    sim::Tick deadline = 0;
    std::vector<TaskDesc> tasks;
    /** Host interrupt: invoked when every task has completed. */
    std::function<void(sim::Tick)> onComplete;
    /**
     * Host interrupt: invoked instead of onComplete when the GAM
     * abandons the job (retry budget exhausted, no healthy
     * accelerator left). Jobs never hang: exactly one of onComplete
     * and onFailed fires for every submitted job.
     */
    std::function<void(sim::Tick)> onFailed;
};

/** Lifecycle of a task inside the GAM. */
enum class TaskState
{
    WaitingDeps,
    WaitingTransfer,
    Queued,
    Running,
    /** Finished on the device, waiting for a status poll to notice. */
    DoneUnobserved,
    Complete,
    /** Abandoned: its job failed (budget exhausted / no device). */
    Failed,
};

const char *taskStateName(TaskState state);

} // namespace reach::gam

#endif // REACH_GAM_TASK_HH
