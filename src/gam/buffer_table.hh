/**
 * @file
 * The GAM's buffer table (paper Fig. 5c: "Buffer ID -> Address
 * boundaries").
 *
 * Every fixed buffer and stream queue the runtime creates is
 * registered here with its compute level and address range, carved
 * from that level's memory capacity. The table is the GAM's view of
 * where data lives — what lets it target DMA transfers and enforce
 * that accelerator arguments refer to real, allocated storage.
 *
 * Allocation is bump-pointer per level (buffers are sedentary for an
 * application's lifetime — the paper's design point); release only
 * reclaims accounting, not address space.
 */

#ifndef REACH_GAM_BUFFER_TABLE_HH
#define REACH_GAM_BUFFER_TABLE_HH

#include <cstdint>
#include <map>
#include <string>

#include "acc/accelerator.hh"
#include "sim/types.hh"

namespace reach::gam
{

using BufferId = std::uint32_t;

struct BufferRecord
{
    BufferId id = ~0u;
    acc::Level level = acc::Level::Cpu;
    /** Base address within the level's space. */
    std::uint64_t base = 0;
    std::uint64_t bytes = 0;
    std::string name;

    /** Address boundaries, Fig. 5c style. */
    std::uint64_t end() const { return base + bytes; }
};

class BufferTable
{
  public:
    /** Capacity of a level's buffer space (0 = level unusable). */
    void setCapacity(acc::Level level, std::uint64_t bytes);
    std::uint64_t capacity(acc::Level level) const;

    /**
     * Allocate @p bytes at @p level; fatal() when the level's
     * capacity would be exceeded or bytes is zero.
     */
    const BufferRecord &allocate(acc::Level level, std::uint64_t bytes,
                                 const std::string &name);

    /** Look up a record, or nullptr. */
    const BufferRecord *find(BufferId id) const;

    /** Drop a record (accounting only; space is not compacted). */
    void release(BufferId id);

    std::uint64_t usedBytes(acc::Level level) const;
    std::size_t size() const { return records.size(); }

  private:
    struct LevelSpace
    {
        std::uint64_t capacity = 0;
        std::uint64_t top = 0;
        std::uint64_t used = 0;
    };

    LevelSpace &space(acc::Level level);
    const LevelSpace &space(acc::Level level) const;

    std::map<acc::Level, LevelSpace> spaces;
    std::map<BufferId, BufferRecord> records;
    BufferId nextId = 0;
};

} // namespace reach::gam

#endif // REACH_GAM_BUFFER_TABLE_HH
