/**
 * @file
 * Internal glue between the dispatcher and the per-backend kernel
 * translation units. REACH_SIMD_HAVE_X86_AVX2 gates everything that
 * needs x86 target attributes / immintrin.h so non-x86 (or non-GNU)
 * builds compile the scalar backend only and dispatch falls back
 * cleanly.
 */

#ifndef REACH_SIMD_KERNELS_HH
#define REACH_SIMD_KERNELS_HH

#include "simd/simd.hh"

#if (defined(__x86_64__) || defined(__i386__)) &&                      \
    (defined(__GNUC__) || defined(__clang__))
#define REACH_SIMD_HAVE_X86_AVX2 1
#else
#define REACH_SIMD_HAVE_X86_AVX2 0
#endif

namespace reach::simd::detail
{

const Kernels &scalarKernels();

#if REACH_SIMD_HAVE_X86_AVX2
const Kernels &avx2Kernels();
#endif

/**
 * Test hook: when @p disable is true, dispatch behaves as if the CPU
 * lacked F16C — the avx2 table hands out scalar fp16 kernels — even
 * on hosts that have it. Lets the no-F16C fallback path run in unit
 * tests on any machine. Not thread-safe; call before spawning workers.
 */
void setF16cOverrideForTest(bool disable);

} // namespace reach::simd::detail

#endif // REACH_SIMD_KERNELS_HH
