/**
 * @file
 * Backend detection and resolution. CPU capability is probed once
 * with __builtin_cpu_supports (x86/GNU only; everything else reports
 * scalar), REACH_SIMD is parsed once, and unsatisfiable explicit
 * requests degrade to the detected backend with a single stderr
 * warning instead of crashing.
 */

#include "simd/kernels.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace reach::simd
{

namespace
{

bool
cpuHasAvx2Fma()
{
#if REACH_SIMD_HAVE_X86_AVX2
    return __builtin_cpu_supports("avx2") &&
           __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

bool
cpuHasF16c()
{
#if REACH_SIMD_HAVE_X86_AVX2
    return __builtin_cpu_supports("f16c");
#else
    return false;
#endif
}

/** Test-only pretend-the-CPU-lacks-F16C switch (see kernels.hh). */
bool g_f16cDisabledForTest = false;

/** True when the avx2 table may hand out its F16C fp16 kernels. */
bool
f16cUsable()
{
    static const bool has = cpuHasF16c();
    return has && !g_f16cDisabledForTest;
}

/** REACH_SIMD, parsed once; invalid values warn and mean auto. */
Choice
envChoice()
{
    static const Choice cached = [] {
        const char *env = std::getenv("REACH_SIMD");
        if (env == nullptr || *env == '\0')
            return Choice::autoDetect;
        Choice c;
        if (!parseChoice(env, c)) {
            std::fprintf(stderr,
                         "reach: ignoring invalid REACH_SIMD=%s "
                         "(expected auto|scalar|avx2)\n",
                         env);
            return Choice::autoDetect;
        }
        return c;
    }();
    return cached;
}

void
warnUnsupportedOnce(Backend want, Backend got)
{
    static bool warned = false;
    if (!warned) {
        warned = true;
        std::fprintf(stderr,
                     "reach: SIMD backend '%s' not supported by this "
                     "CPU, falling back to '%s'\n",
                     name(want), name(got));
    }
}

} // namespace

bool
supported(Backend b)
{
    switch (b) {
    case Backend::scalar:
        return true;
    case Backend::avx2: {
        static const bool has = cpuHasAvx2Fma();
        return has;
    }
    }
    return false;
}

Backend
detect()
{
    return supported(Backend::avx2) ? Backend::avx2 : Backend::scalar;
}

Backend
resolve(Choice c)
{
    if (c == Choice::autoDetect)
        c = envChoice();
    switch (c) {
    case Choice::autoDetect:
        return detect();
    case Choice::scalar:
        return Backend::scalar;
    case Choice::avx2:
        if (supported(Backend::avx2))
            return Backend::avx2;
        warnUnsupportedOnce(Backend::avx2, detect());
        return detect();
    }
    return detect();
}

const char *
name(Backend b)
{
    switch (b) {
    case Backend::scalar:
        return "scalar";
    case Backend::avx2:
        return "avx2";
    }
    return "?";
}

bool
parseChoice(const char *text, Choice &out)
{
    if (text == nullptr)
        return false;
    if (std::strcmp(text, "auto") == 0) {
        out = Choice::autoDetect;
        return true;
    }
    if (std::strcmp(text, "scalar") == 0) {
        out = Choice::scalar;
        return true;
    }
    if (std::strcmp(text, "avx2") == 0) {
        out = Choice::avx2;
        return true;
    }
    return false;
}

void
adc4Pack(const std::uint8_t *codes, std::size_t n, std::size_t m,
         std::uint8_t *blocks)
{
    const std::size_t rows = adc4CodeBytes(m);
    std::fill(blocks, blocks + adc4PackedBytes(n, m),
              std::uint8_t{0});
    for (std::size_t r = 0; r < n; ++r) {
        std::uint8_t *blk =
            blocks + r / kAdc4BlockCands * adc4BlockBytes(m);
        const std::size_t c = r % kAdc4BlockCands;
        const std::uint8_t *code = codes + r * rows;
        for (std::size_t p = 0; p < rows; ++p)
            blk[p * kAdc4BlockCands + c] = code[p];
    }
}

#if REACH_SIMD_HAVE_X86_AVX2
namespace
{

/**
 * The avx2 table for hosts (or tests) without F16C: every fp32/ADC
 * entry stays avx2, only the fp16 kernels drop to scalar. Built on
 * first use with a one-line note so a missing 2.13x scan speedup is
 * explainable from the log.
 */
const Kernels &
avx2NoF16cKernels()
{
    static const Kernels k = [] {
        std::fprintf(stderr,
                     "reach: CPU lacks F16C, fp16 shortlist kernels "
                     "fall back to scalar (avx2 otherwise)\n");
        Kernels patched = detail::avx2Kernels();
        const Kernels &s = detail::scalarKernels();
        patched.gemmNtF16 = s.gemmNtF16;
        patched.shortlistScoreF16 = s.shortlistScoreF16;
        return patched;
    }();
    return k;
}

} // namespace
#endif

const Kernels &
kernels(Backend b)
{
#if REACH_SIMD_HAVE_X86_AVX2
    if (b == Backend::avx2 && supported(Backend::avx2)) {
        if (f16cUsable())
            return detail::avx2Kernels();
        return avx2NoF16cKernels();
    }
#endif
    (void)b;
    return detail::scalarKernels();
}

namespace detail
{

void
setF16cOverrideForTest(bool disable)
{
    g_f16cDisabledForTest = disable;
}

} // namespace detail

} // namespace reach::simd
