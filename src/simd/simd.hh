/**
 * @file
 * Runtime-dispatched SIMD kernel layer for the functional CBIR hot
 * paths. Every primitive exists in a scalar baseline and (on x86
 * hosts whose CPU reports AVX2+FMA) an AVX2/FMA variant; the variant
 * is picked once at runtime via __builtin_cpu_supports, so one binary
 * runs unchanged on non-AVX2 hosts.
 *
 * Backend selection, strongest to weakest:
 *   1. an explicit simd::Choice pinned on a config
 *      (parallel::ParallelConfig::simd, and through it
 *      CbirService::Config),
 *   2. the REACH_SIMD environment variable (auto|scalar|avx2),
 *   3. CPU auto-detection.
 *
 * Determinism contract (refined from the thread-level one in
 * parallel.hh): for a *fixed backend* every kernel is a pure function
 * of its inputs — per-row/per-pair arithmetic never depends on where
 * the row sits inside a batch or tile, so chunked parallel callers
 * stay bitwise identical at 1 and N threads. Across backends results
 * agree only to rounding tolerance (different accumulation orders and
 * FMA contraction), which is why reproducibility-sensitive runs pin
 * the backend.
 *
 * Cross-kernel invariants each backend upholds (tests assert them
 * bitwise):
 *   normSq(a, d)              == dot(a, a, d)
 *   dotBatch(q, rows, ...)[r] == dot(q, rows + r*d, d)
 *   l2sqBatch(q, rows,...)[r] == l2sq(q, rows + r*d, d)
 *   dotIdx(q, base, ids,..)[r]== dot(q, base + ids[r]*d, d)
 *   adcBatch(lut, st, codes,..)[r]
 *                             == adcAccum(lut, st, codes + r*m, m)
 *
 * The ADC kernels are stricter than the rest: the 8-bit gather sum
 * contains no multiplies, so both backends commit to one
 * accumulation order (eight interleaved partial sums folded by the
 * fixed hsum tree, then a sequential tail); the 4-bit shuffle sum is
 * an exact integer finished by one fused multiply-add. Either way
 * scalar/avx2 agree BITWISE, not just to tolerance.
 *
 * The fp16 kernels (gemmNtF16 / shortlistScoreF16) follow the ADC
 * model: both backends commit to one accumulation order — eight
 * fused-multiply-add lanes over d folded by the fixed hsum tree, an
 * fma tail, and an exact half -> float load conversion (software on
 * scalar, VCVTPH2PS on avx2; half.hh proves them identical) — so
 * scalar and avx2 agree BITWISE. The fp32 shortlistScore instead
 * inherits gemmNt's per-backend contract: for a fixed backend its
 * distances are bitwise identical to gemmNt followed by the
 * qn + cnorm - 2*dot epilogue, which is what keeps the blocked fp32
 * shortlist path bit-for-bit equal to the historical materialized
 * product.
 */

#ifndef REACH_SIMD_SIMD_HH
#define REACH_SIMD_SIMD_HH

#include <cstddef>
#include <cstdint>

namespace reach::simd
{

/**
 * Default row stride (in floats) of the 8-bit ADC lookup table: a
 * full u8 code range per subspace row, so any code indexes in bounds.
 * The gather kernels take the stride as a runtime parameter — a
 * codebook trained with fewer centroids (notably the 4-bit mode's 16)
 * passes its own row stride and the kernels never read past it.
 */
inline constexpr std::size_t kAdcLutStride = 256;

/** Row stride (in u8 entries) of the 4-bit shuffle ADC table. */
inline constexpr std::size_t kAdc4LutStride = 16;

/**
 * Candidates per 4-bit FastScan block: one AVX2 register of packed
 * bytes scores 32 candidates per shuffle sweep.
 */
inline constexpr std::size_t kAdc4BlockCands = 32;

/** Packed bytes one vector's 4-bit code occupies (two per byte). */
constexpr std::size_t
adc4CodeBytes(std::size_t m)
{
    return (m + 1) / 2;
}

/** Bytes of one FastScan block: adc4CodeBytes(m) rows of 32 lanes. */
constexpr std::size_t
adc4BlockBytes(std::size_t m)
{
    return adc4CodeBytes(m) * kAdc4BlockCands;
}

/** Bytes the block-transposed layout of @p n packed codes occupies. */
constexpr std::size_t
adc4PackedBytes(std::size_t n, std::size_t m)
{
    return (n + kAdc4BlockCands - 1) / kAdc4BlockCands *
           adc4BlockBytes(m);
}

/**
 * Candidates per code-stream chunk in the multi-query ADC kernels:
 * all queries sweep one chunk before the stream advances, so a chunk
 * (32 KiB of 8-bit codes at m = 32) is still cache-resident when the
 * last query scores it. A multiple of kAdc4BlockCands so the 4-bit
 * chunks land on FastScan block boundaries.
 */
inline constexpr std::size_t kAdcMultiChunk = 1024;

/**
 * Transpose @p n packed 4-bit codes (rows of adc4CodeBytes(m) bytes;
 * byte p holds subspace 2p in the low nibble and 2p+1 in the high)
 * into the FastScan block layout adcBatch4 scans: blocks of 32
 * candidates, each a row-major [adc4CodeBytes(m)][32] tile whose byte
 * (p, c) is candidate c's packed byte p. Tail lanes of the last block
 * are zero-coded; @p blocks must hold adc4PackedBytes(n, m) bytes.
 * Plain byte moves — layout, thread count and backend cannot change
 * the result.
 */
void adc4Pack(const std::uint8_t *codes, std::size_t n, std::size_t m,
              std::uint8_t *blocks);

/** A concrete kernel implementation. */
enum class Backend : std::uint8_t { scalar, avx2 };

/** A backend request: pin one, or defer to REACH_SIMD / detection. */
enum class Choice : std::uint8_t { autoDetect, scalar, avx2 };

/** True when the host CPU can execute @p b. */
bool supported(Backend b);

/** Best CPU-supported backend (ignores REACH_SIMD). */
Backend detect();

/**
 * Resolve a request to a runnable backend: an explicit choice wins,
 * then REACH_SIMD, then detection. An explicitly requested backend
 * the CPU lacks falls back to detect() with a one-time warning on
 * stderr rather than crashing.
 */
Backend resolve(Choice c = Choice::autoDetect);

/** "scalar" / "avx2". */
const char *name(Backend b);

/**
 * Parse "auto" / "scalar" / "avx2" (the REACH_SIMD grammar).
 * @return true and sets @p out on success.
 */
bool parseChoice(const char *text, Choice &out);

/**
 * The dispatch table. All row/tile pointers refer to contiguous
 * row-major storage; @p d is the vector length (no alignment
 * requirement, though 64-byte aligned rows are fastest).
 */
struct Kernels
{
    /** sum_t a[t] * b[t] */
    float (*dot)(const float *a, const float *b, std::size_t d);
    /** sum_t (a[t] - b[t])^2 */
    float (*l2sq)(const float *a, const float *b, std::size_t d);
    /** sum_t a[t]^2, bitwise equal to dot(a, a, d). */
    float (*normSq)(const float *a, std::size_t d);
    /** y[t] += alpha * x[t] */
    void (*axpy)(float alpha, const float *x, float *y, std::size_t d);
    /** out[r] = dot(q, rows + r*d) for r in [0, n). */
    void (*dotBatch)(const float *q, const float *rows, std::size_t n,
                     std::size_t d, float *out);
    /**
     * Indexed rows: out[r] = dot(q, base + ids[r]*d) for r in [0, n).
     * The gather-free form of dotBatch for scattered candidates
     * (rerank); per-row arithmetic is identical.
     */
    void (*dotIdx)(const float *q, const float *base,
                   const std::uint32_t *ids, std::size_t n,
                   std::size_t d, float *out);
    /** out[r] = l2sq(q, rows + r*d) for r in [0, n). */
    void (*l2sqBatch)(const float *q, const float *rows, std::size_t n,
                      std::size_t d, float *out);
    /**
     * Register-blocked C = A * B^T micro-kernel over one row block:
     * A is (n x d), B is (m x d), C rows are written at stride
     * @p ldc >= m. Per-(i,j) accumulation never depends on n or the
     * block split, so row-block parallel callers stay deterministic.
     */
    void (*gemmNt)(const float *a, std::size_t n, const float *b,
                   std::size_t m, std::size_t d, float *c,
                   std::size_t ldc);
    /**
     * PQ asymmetric-distance accumulation over a table with @p stride
     * floats per subspace row:
     *   sum_s lut[s * stride + code[s]]  for s in [0, m).
     * Every code must be < stride (the codebook guarantees codes <
     * numCentroids() <= its lutStride()), so the kernel never reads
     * past a row's valid entries. Pure fp32 additions in the fixed
     * order documented above, so the result is bitwise identical
     * across backends.
     */
    float (*adcAccum)(const float *lut, std::size_t stride,
                      const std::uint8_t *code, std::size_t m);
    /** out[r] = adcAccum(lut, stride, codes + r*m, m), r in [0, n). */
    void (*adcBatch)(const float *lut, std::size_t stride,
                     const std::uint8_t *codes, std::size_t n,
                     std::size_t m, float *out);
    /**
     * 4-bit FastScan ADC: score @p n candidates from the packed block
     * layout adc4Pack builds, against a u8-quantized table of m rows
     * by kAdc4LutStride entries (each row register-resident in the
     * avx2 backend, looked up with _mm256_shuffle_epi8, 32 candidates
     * per sweep). Per candidate:
     *   out[r] = fma(scale, sum_s lut[s * 16 + code(r, s)], bias)
     * The sum is an exact integer (u16 lanes; m <= 256 keeps the
     * worst case 255 * 256 below overflow — validatePqConfig enforces
     * it) and the one fp op is a correctly-rounded fused
     * multiply-add, so scalar and avx2 agree BITWISE with no
     * lane-order emulation needed. @p blocks must span whole blocks
     * (adc4PackedBytes(n, m) bytes); only out[0, n) is written.
     */
    void (*adcBatch4)(const std::uint8_t *lut,
                      const std::uint8_t *blocks, std::size_t n,
                      std::size_t m, float scale, float bias,
                      float *out);
    /**
     * Multi-query 8-bit ADC over one shared code stream: query g of
     * @p nq scores the first ns[g] candidates of @p codes against its
     * own table luts[g] into outs[g]. The stream advances in
     * kAdcMultiChunk-candidate chunks with every live query sweeping
     * the current chunk before the next is touched, so a cluster's
     * code block is read from memory once per call instead of once
     * per query. Per-candidate arithmetic is position-independent
     * (each candidate runs the adcAccum chain of its backend), so for
     * every g
     *   outs[g][0, ns[g]) == adcBatch(luts[g], stride, codes, ns[g],
     *                                 m, out)
     * BITWISE — chunking cannot change the bits.
     */
    void (*adcBatchMulti)(const float *const *luts, std::size_t stride,
                          const std::size_t *ns, std::size_t nq,
                          const std::uint8_t *codes, std::size_t m,
                          float *const *outs);
    /**
     * Multi-query 4-bit FastScan over one shared block stream: query
     * g scores the first ns[g] candidates of @p blocks against its
     * own u8 table luts[g] (dequantized with scales[g] / biases[g])
     * into outs[g]. One 32-candidate block is loaded — and its
     * nibbles unpacked — once, then swept against every live query's
     * register-resident tables before the stream advances. The u16
     * lane sums stay exact integers and the one fp op per candidate
     * is the same fused multiply-add as adcBatch4, so for every g
     *   outs[g][0, ns[g]) == adcBatch4(luts[g], blocks, ns[g], m,
     *                                  scales[g], biases[g], out)
     * BITWISE at either backend. @p blocks must span whole blocks
     * for max(ns) candidates; only outs[g][0, ns[g]) is written.
     */
    void (*adcBatch4Multi)(const std::uint8_t *const *luts,
                           const std::size_t *ns, std::size_t nq,
                           const std::uint8_t *blocks, std::size_t m,
                           const float *scales, const float *biases,
                           float *const *outs);
    /**
     * gemmNt over half-precision B: A is fp32 (n x d), B is packed
     * IEEE binary16 (m x d u16, built by floatToHalfRne), C rows at
     * stride @p ldc >= m, accumulated in fp32. Each C(i,j) is eight
     * fma lanes over d (halves converted exactly to fp32 on load),
     * the fixed hsum fold, then an fma tail — the same sequence on
     * both backends, so scalar == avx2 BITWISE (see the header
     * comment; half.hh carries the conversion proof).
     */
    void (*gemmNtF16)(const float *a, std::size_t n,
                      const std::uint16_t *b, std::size_t m,
                      std::size_t d, float *c, std::size_t ldc);
    /**
     * Fused shortlist scoring over one (n x m) tile:
     *   out[i*ldo + j] = (qn[i] + cnorm[j]) - 2 * dot(A_i, B_j)
     * with the dot computed exactly as gemmNt computes it — for a
     * fixed backend the distances are bitwise identical to running
     * gemmNt into a scratch tile and applying the epilogue, so a
     * column-blocked caller reproduces the historical materialized
     * B x M product bit for bit without ever allocating it. The
     * epilogue is contraction-free (t = qn + cnorm; t - (p + p)), so
     * per-backend bits never depend on the compiler fusing a
     * multiply-subtract.
     */
    void (*shortlistScore)(const float *a, const float *qn,
                           std::size_t n, const float *b,
                           const float *cnorm, std::size_t m,
                           std::size_t d, float *out,
                           std::size_t ldo);
    /**
     * shortlistScore over half-precision centroids: the gemmNtF16
     * accumulation followed by the same contraction-free epilogue.
     * Like gemmNtF16, scalar == avx2 BITWISE.
     */
    void (*shortlistScoreF16)(const float *a, const float *qn,
                              std::size_t n, const std::uint16_t *b,
                              const float *cnorm, std::size_t m,
                              std::size_t d, float *out,
                              std::size_t ldo);
};

/**
 * Kernel table of a backend (valid for the process lifetime). The
 * avx2 table's fp16 entries additionally need the F16C extension
 * (present on every AVX2 CPU, but hypervisors can mask it): when the
 * host reports avx2 without f16c, those two entries fall back to the
 * scalar implementations with a one-line stderr note and everything
 * else stays avx2 — REACH_SIMD=avx2 never faults on such a host.
 */
const Kernels &kernels(Backend b);

/** Shorthand: table of the resolved backend for @p c. */
inline const Kernels &
kernels(Choice c)
{
    return kernels(resolve(c));
}

} // namespace reach::simd

#endif // REACH_SIMD_SIMD_HH
