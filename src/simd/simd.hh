/**
 * @file
 * Runtime-dispatched SIMD kernel layer for the functional CBIR hot
 * paths. Every primitive exists in a scalar baseline and (on x86
 * hosts whose CPU reports AVX2+FMA) an AVX2/FMA variant; the variant
 * is picked once at runtime via __builtin_cpu_supports, so one binary
 * runs unchanged on non-AVX2 hosts.
 *
 * Backend selection, strongest to weakest:
 *   1. an explicit simd::Choice pinned on a config
 *      (parallel::ParallelConfig::simd, and through it
 *      CbirService::Config),
 *   2. the REACH_SIMD environment variable (auto|scalar|avx2),
 *   3. CPU auto-detection.
 *
 * Determinism contract (refined from the thread-level one in
 * parallel.hh): for a *fixed backend* every kernel is a pure function
 * of its inputs — per-row/per-pair arithmetic never depends on where
 * the row sits inside a batch or tile, so chunked parallel callers
 * stay bitwise identical at 1 and N threads. Across backends results
 * agree only to rounding tolerance (different accumulation orders and
 * FMA contraction), which is why reproducibility-sensitive runs pin
 * the backend.
 *
 * Cross-kernel invariants each backend upholds (tests assert them
 * bitwise):
 *   normSq(a, d)              == dot(a, a, d)
 *   dotBatch(q, rows, ...)[r] == dot(q, rows + r*d, d)
 *   l2sqBatch(q, rows,...)[r] == l2sq(q, rows + r*d, d)
 *   dotIdx(q, base, ids,..)[r]== dot(q, base + ids[r]*d, d)
 *   adcBatch(lut, codes,..)[r]== adcAccum(lut, codes + r*m, m)
 *
 * The ADC pair is stricter than the rest: its sum contains no
 * multiplies, so both backends commit to one accumulation order
 * (eight interleaved partial sums folded by the fixed hsum tree,
 * then a sequential tail) and scalar/avx2 agree BITWISE, not just to
 * tolerance.
 */

#ifndef REACH_SIMD_SIMD_HH
#define REACH_SIMD_SIMD_HH

#include <cstddef>
#include <cstdint>

namespace reach::simd
{

/**
 * Row stride (in floats) of the ADC lookup table: every subspace row
 * holds kAdcLutStride entries regardless of the trained centroid
 * count, so a u8 code always indexes in bounds and the avx2 gather
 * can use one constant lane offset.
 */
inline constexpr std::size_t kAdcLutStride = 256;

/** A concrete kernel implementation. */
enum class Backend : std::uint8_t { scalar, avx2 };

/** A backend request: pin one, or defer to REACH_SIMD / detection. */
enum class Choice : std::uint8_t { autoDetect, scalar, avx2 };

/** True when the host CPU can execute @p b. */
bool supported(Backend b);

/** Best CPU-supported backend (ignores REACH_SIMD). */
Backend detect();

/**
 * Resolve a request to a runnable backend: an explicit choice wins,
 * then REACH_SIMD, then detection. An explicitly requested backend
 * the CPU lacks falls back to detect() with a one-time warning on
 * stderr rather than crashing.
 */
Backend resolve(Choice c = Choice::autoDetect);

/** "scalar" / "avx2". */
const char *name(Backend b);

/**
 * Parse "auto" / "scalar" / "avx2" (the REACH_SIMD grammar).
 * @return true and sets @p out on success.
 */
bool parseChoice(const char *text, Choice &out);

/**
 * The dispatch table. All row/tile pointers refer to contiguous
 * row-major storage; @p d is the vector length (no alignment
 * requirement, though 64-byte aligned rows are fastest).
 */
struct Kernels
{
    /** sum_t a[t] * b[t] */
    float (*dot)(const float *a, const float *b, std::size_t d);
    /** sum_t (a[t] - b[t])^2 */
    float (*l2sq)(const float *a, const float *b, std::size_t d);
    /** sum_t a[t]^2, bitwise equal to dot(a, a, d). */
    float (*normSq)(const float *a, std::size_t d);
    /** y[t] += alpha * x[t] */
    void (*axpy)(float alpha, const float *x, float *y, std::size_t d);
    /** out[r] = dot(q, rows + r*d) for r in [0, n). */
    void (*dotBatch)(const float *q, const float *rows, std::size_t n,
                     std::size_t d, float *out);
    /**
     * Indexed rows: out[r] = dot(q, base + ids[r]*d) for r in [0, n).
     * The gather-free form of dotBatch for scattered candidates
     * (rerank); per-row arithmetic is identical.
     */
    void (*dotIdx)(const float *q, const float *base,
                   const std::uint32_t *ids, std::size_t n,
                   std::size_t d, float *out);
    /** out[r] = l2sq(q, rows + r*d) for r in [0, n). */
    void (*l2sqBatch)(const float *q, const float *rows, std::size_t n,
                      std::size_t d, float *out);
    /**
     * Register-blocked C = A * B^T micro-kernel over one row block:
     * A is (n x d), B is (m x d), C rows are written at stride
     * @p ldc >= m. Per-(i,j) accumulation never depends on n or the
     * block split, so row-block parallel callers stay deterministic.
     */
    void (*gemmNt)(const float *a, std::size_t n, const float *b,
                   std::size_t m, std::size_t d, float *c,
                   std::size_t ldc);
    /**
     * PQ asymmetric-distance accumulation:
     *   sum_s lut[s * kAdcLutStride + code[s]]  for s in [0, m).
     * Pure fp32 additions in the fixed order documented above, so the
     * result is bitwise identical across backends.
     */
    float (*adcAccum)(const float *lut, const std::uint8_t *code,
                      std::size_t m);
    /** out[r] = adcAccum(lut, codes + r*m, m) for r in [0, n). */
    void (*adcBatch)(const float *lut, const std::uint8_t *codes,
                     std::size_t n, std::size_t m, float *out);
};

/** Kernel table of a backend (valid for the process lifetime). */
const Kernels &kernels(Backend b);

/** Shorthand: table of the resolved backend for @p c. */
inline const Kernels &
kernels(Choice c)
{
    return kernels(resolve(c));
}

} // namespace reach::simd

#endif // REACH_SIMD_SIMD_HH
