/**
 * @file
 * Minimal over-aligned allocator so containers backing SIMD-visible
 * storage (cbir::Matrix, candidate tiles) start on a cache-line /
 * full-vector boundary: row starts are then aligned whenever the row
 * length is a multiple of the vector width.
 */

#ifndef REACH_SIMD_ALIGNED_HH
#define REACH_SIMD_ALIGNED_HH

#include <cstddef>
#include <new>

namespace reach::simd
{

template <typename T, std::size_t Align = 64>
struct AlignedAllocator
{
    static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                  "Align must be a power of two >= alignof(T)");

    using value_type = T;

    AlignedAllocator() noexcept = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align> &) noexcept
    {
    }

    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t{Align}));
    }

    void
    deallocate(T *p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t{Align});
    }

    friend bool
    operator==(const AlignedAllocator &, const AlignedAllocator &)
    {
        return true;
    }
};

} // namespace reach::simd

#endif // REACH_SIMD_ALIGNED_HH
