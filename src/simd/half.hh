/**
 * @file
 * Software IEEE-754 binary16 ("half") conversion, bit-exact against
 * the x86 F16C instructions. The fp16 shortlist scan stores centroids
 * as packed u16 halves; the *storage* conversion (float -> half,
 * round to nearest even) always runs through floatToHalfRne here so
 * every backend builds the identical packed buffer, and the *load*
 * conversion (half -> float, exact) is halfToFloat here on the scalar
 * backend and _mm256_cvtph_ps on the avx2 one — the two agree on
 * every one of the 65536 bit patterns (including subnormals; SNaNs
 * quiet the same way VCVTPH2PS does), which is what lets the fp16
 * kernels promise bitwise scalar == avx2 results.
 */

#ifndef REACH_SIMD_HALF_HH
#define REACH_SIMD_HALF_HH

#include <bit>
#include <cstddef>
#include <cstdint>

namespace reach::simd
{

/**
 * Convert @p value to binary16, rounding to nearest even — the same
 * result as VCVTPS2PH with rounding control 0. Out-of-range values
 * become signed infinity, NaNs become quiet half NaNs.
 */
constexpr std::uint16_t
floatToHalfRne(float value)
{
    const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
    const auto sign = static_cast<std::uint16_t>((bits >> 16) & 0x8000u);
    const std::uint32_t mag = bits & 0x7FFFFFFFu;

    if (mag >= 0x7F800000u) { // inf / NaN
        if (mag > 0x7F800000u)
            return sign | 0x7E00u; // quiet NaN
        return sign | 0x7C00u;
    }
    if (mag >= 0x477FF000u) // rounds past 65504, the largest half
        return sign | 0x7C00u;
    if (mag >= 0x38800000u) { // normal half range (>= 2^-14)
        const std::uint32_t exp = (mag >> 23) - 112;
        std::uint32_t h = (exp << 10) | ((mag & 0x7FFFFFu) >> 13);
        const std::uint32_t rem = mag & 0x1FFFu;
        if (rem > 0x1000u || (rem == 0x1000u && (h & 1u)))
            ++h; // mantissa carry rolls into the exponent correctly
        return sign | static_cast<std::uint16_t>(h);
    }
    if (mag <= 0x33000000u) // <= 2^-25: below half of the smallest
        return sign;        // subnormal; ties-to-even gives zero
    // Subnormal half: value in (2^-25, 2^-14) becomes round(value /
    // 2^-24) units of the subnormal ulp.
    const std::uint32_t mant = (mag & 0x7FFFFFu) | 0x800000u;
    const std::uint32_t shift = 126 - (mag >> 23); // 14..24
    std::uint32_t q = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1);
    const std::uint32_t half = 1u << (shift - 1);
    if (rem > half || (rem == half && (q & 1u)))
        ++q; // q can reach 0x400 == the smallest normal half: correct
    return sign | static_cast<std::uint16_t>(q);
}

/**
 * Exact binary16 -> binary32 conversion, bitwise identical to
 * VCVTPH2PS for every pattern (subnormal halves normalize; SNaN
 * payloads keep their bits with the quiet bit set, as the hardware
 * does).
 */
constexpr float
halfToFloat(std::uint16_t h)
{
    const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u)
                               << 16;
    const std::uint32_t exp = (h >> 10) & 0x1Fu;
    std::uint32_t mant = h & 0x3FFu;
    std::uint32_t bits = sign;
    if (exp == 0) {
        if (mant != 0) {
            std::uint32_t shift = 0;
            while ((mant & 0x400u) == 0) {
                mant <<= 1;
                ++shift;
            }
            bits |= ((113 - shift) << 23) | ((mant & 0x3FFu) << 13);
        }
    } else if (exp == 31) {
        bits |= 0x7F800000u | (mant << 13);
        if (mant != 0)
            bits |= 0x400000u; // quiet a signalling NaN like VCVTPH2PS
    } else {
        bits |= ((exp + 112) << 23) | (mant << 13);
    }
    return std::bit_cast<float>(bits);
}

/** floatToHalfRne over @p n contiguous values. */
void halfFromFloats(const float *src, std::size_t n,
                    std::uint16_t *dst);

/**
 * ||x||^2 of a half vector, accumulated in fp32 with the fp16
 * kernels' fixed lane order (eight fused-multiply-add chains folded
 * by the hsum tree, fma tail). Pure software — no dispatch — so
 * index-side precomputed norms are identical on every backend.
 */
float halfNormSq(const std::uint16_t *h, std::size_t d);

} // namespace reach::simd

#endif // REACH_SIMD_HALF_HH
