#include "simd/half.hh"

#include <cmath>

namespace reach::simd
{

void
halfFromFloats(const float *src, std::size_t n, std::uint16_t *dst)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = floatToHalfRne(src[i]);
}

float
halfNormSq(const std::uint16_t *h, std::size_t d)
{
    float lane[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    std::size_t t = 0;
    for (; t + 8 <= d; t += 8) {
        for (std::size_t j = 0; j < 8; ++j) {
            const float x = halfToFloat(h[t + j]);
            lane[j] = std::fma(x, x, lane[j]);
        }
    }
    const float s04 = lane[0] + lane[4];
    const float s15 = lane[1] + lane[5];
    const float s26 = lane[2] + lane[6];
    const float s37 = lane[3] + lane[7];
    float acc = (s04 + s26) + (s15 + s37);
    for (; t < d; ++t) {
        const float x = halfToFloat(h[t]);
        acc = std::fma(x, x, acc);
    }
    return acc;
}

} // namespace reach::simd
