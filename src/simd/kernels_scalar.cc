/**
 * @file
 * Scalar baseline kernels. These preserve the exact accumulation
 * order of the pre-SIMD linalg code (one sequential chain per value,
 * multiply-then-add), so pinning REACH_SIMD=scalar reproduces the
 * historical results bitwise on any host.
 */

#include "simd/kernels.hh"

#include <cmath>

#include "simd/half.hh"

namespace reach::simd::detail
{

namespace
{

float
dotScalar(const float *a, const float *b, std::size_t d)
{
    float acc = 0;
    for (std::size_t t = 0; t < d; ++t)
        acc += a[t] * b[t];
    return acc;
}

float
l2sqScalar(const float *a, const float *b, std::size_t d)
{
    float acc = 0;
    for (std::size_t t = 0; t < d; ++t) {
        float diff = a[t] - b[t];
        acc += diff * diff;
    }
    return acc;
}

float
normSqScalar(const float *a, std::size_t d)
{
    return dotScalar(a, a, d);
}

void
axpyScalar(float alpha, const float *x, float *y, std::size_t d)
{
    for (std::size_t t = 0; t < d; ++t)
        y[t] += alpha * x[t];
}

void
dotBatchScalar(const float *q, const float *rows, std::size_t n,
               std::size_t d, float *out)
{
    for (std::size_t r = 0; r < n; ++r)
        out[r] = dotScalar(q, rows + r * d, d);
}

void
l2sqBatchScalar(const float *q, const float *rows, std::size_t n,
                std::size_t d, float *out)
{
    for (std::size_t r = 0; r < n; ++r)
        out[r] = l2sqScalar(q, rows + r * d, d);
}

void
dotIdxScalar(const float *q, const float *base, const std::uint32_t *ids,
             std::size_t n, std::size_t d, float *out)
{
    for (std::size_t r = 0; r < n; ++r)
        out[r] = dotScalar(q, base + std::size_t(ids[r]) * d, d);
}

/**
 * The ADC sum mirrors the avx2 layout exactly: eight virtual lanes
 * accumulate subspaces s, s+8, s+16, ... independently, the lanes
 * fold in the hsum256 tree order ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)),
 * and the m % 8 tail adds sequentially. Addition only (no FMA
 * contraction to differ on), so scalar == avx2 bitwise.
 */
float
adcAccumScalar(const float *lut, std::size_t stride,
               const std::uint8_t *code, std::size_t m)
{
    float lane[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    std::size_t s = 0;
    for (; s + 8 <= m; s += 8) {
        const float *row = lut + s * stride;
        for (std::size_t j = 0; j < 8; ++j)
            lane[j] += row[j * stride + code[s + j]];
    }
    float s04 = lane[0] + lane[4];
    float s15 = lane[1] + lane[5];
    float s26 = lane[2] + lane[6];
    float s37 = lane[3] + lane[7];
    float acc = (s04 + s26) + (s15 + s37);
    for (; s < m; ++s)
        acc += lut[s * stride + code[s]];
    return acc;
}

void
adcBatchScalar(const float *lut, std::size_t stride,
               const std::uint8_t *codes, std::size_t n, std::size_t m,
               float *out)
{
    for (std::size_t r = 0; r < n; ++r)
        out[r] = adcAccumScalar(lut, stride, codes + r * m, m);
}

/**
 * 4-bit FastScan reference: per candidate, walk its lane down the
 * block's rows, summing both nibbles' table entries into a u32. The
 * integer sum is exact, so no lane emulation is needed for bitwise
 * agreement with avx2 — only the final fma must match, and std::fma
 * is the same correctly-rounded operation as _mm256_fmadd_ps.
 */
void
adcBatch4Scalar(const std::uint8_t *lut, const std::uint8_t *blocks,
                std::size_t n, std::size_t m, float scale, float bias,
                float *out)
{
    const std::size_t rows = adc4CodeBytes(m);
    for (std::size_t r = 0; r < n; ++r) {
        const std::uint8_t *blk =
            blocks + r / kAdc4BlockCands * adc4BlockBytes(m);
        const std::size_t c = r % kAdc4BlockCands;
        std::uint32_t sum = 0;
        for (std::size_t p = 0; p < rows; ++p) {
            const std::uint8_t byte = blk[p * kAdc4BlockCands + c];
            sum += lut[2 * p * kAdc4LutStride + (byte & 0x0F)];
            if (2 * p + 1 < m)
                sum += lut[(2 * p + 1) * kAdc4LutStride + (byte >> 4)];
        }
        out[r] = std::fma(scale, static_cast<float>(sum), bias);
    }
}

/**
 * Multi-query ADC, scalar: the shared stream advances one
 * kAdcMultiChunk-candidate chunk at a time with every live query
 * scoring the chunk through the single-query kernel. Per-candidate
 * arithmetic is position-independent, so the chunking is invisible
 * in the bits; the scalar backend keeps the structure (rather than a
 * plain per-query loop) so its cache behaviour mirrors avx2.
 */
void
adcBatchMultiScalar(const float *const *luts, std::size_t stride,
                    const std::size_t *ns, std::size_t nq,
                    const std::uint8_t *codes, std::size_t m,
                    float *const *outs)
{
    std::size_t nmax = 0;
    for (std::size_t g = 0; g < nq; ++g)
        nmax = nmax < ns[g] ? ns[g] : nmax;
    for (std::size_t c0 = 0; c0 < nmax; c0 += kAdcMultiChunk) {
        for (std::size_t g = 0; g < nq; ++g) {
            if (ns[g] <= c0)
                continue;
            const std::size_t cnt = ns[g] - c0 < kAdcMultiChunk
                                        ? ns[g] - c0
                                        : kAdcMultiChunk;
            adcBatchScalar(luts[g], stride, codes + c0 * m, cnt, m,
                           outs[g] + c0);
        }
    }
}

/** adcBatch4 analogue of adcBatchMultiScalar, chunked on blocks. */
void
adcBatch4MultiScalar(const std::uint8_t *const *luts,
                     const std::size_t *ns, std::size_t nq,
                     const std::uint8_t *blocks, std::size_t m,
                     const float *scales, const float *biases,
                     float *const *outs)
{
    std::size_t nmax = 0;
    for (std::size_t g = 0; g < nq; ++g)
        nmax = nmax < ns[g] ? ns[g] : nmax;
    const std::size_t blockBytes = adc4BlockBytes(m);
    for (std::size_t c0 = 0; c0 < nmax; c0 += kAdcMultiChunk) {
        const std::uint8_t *chunk =
            blocks + c0 / kAdc4BlockCands * blockBytes;
        for (std::size_t g = 0; g < nq; ++g) {
            if (ns[g] <= c0)
                continue;
            const std::size_t cnt = ns[g] - c0 < kAdcMultiChunk
                                        ? ns[g] - c0
                                        : kAdcMultiChunk;
            adcBatch4Scalar(luts[g], chunk, cnt, m, scales[g],
                            biases[g], outs[g] + c0);
        }
    }
}

/**
 * 1x4 register tile: each A row streams once across four B rows with
 * four live accumulators; per-element order over d matches dot(), so
 * the tiling never changes a C value.
 */
void
gemmNtScalar(const float *a, std::size_t n, const float *b,
             std::size_t m, std::size_t d, float *c, std::size_t ldc)
{
    for (std::size_t i = 0; i < n; ++i) {
        const float *ra = a + i * d;
        float *rc = c + i * ldc;
        std::size_t j = 0;
        for (; j + 4 <= m; j += 4) {
            const float *b0 = b + j * d;
            const float *b1 = b0 + d;
            const float *b2 = b1 + d;
            const float *b3 = b2 + d;
            float acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
            for (std::size_t t = 0; t < d; ++t) {
                float av = ra[t];
                acc0 += av * b0[t];
                acc1 += av * b1[t];
                acc2 += av * b2[t];
                acc3 += av * b3[t];
            }
            rc[j] = acc0;
            rc[j + 1] = acc1;
            rc[j + 2] = acc2;
            rc[j + 3] = acc3;
        }
        for (; j < m; ++j)
            rc[j] = dotScalar(ra, b + j * d, d);
    }
}

/**
 * One fp16 dot: the avx2 kernel's eight fused-multiply-add lanes
 * emulated exactly — lane j accumulates dims t, t+8, ... with
 * std::fma (the same correctly-rounded operation as vfmadd), the
 * lanes fold in the hsum256 tree order, and the d % 8 tail continues
 * with std::fma. halfToFloat is bit-identical to VCVTPH2PS, so the
 * whole chain matches the avx2 backend bitwise.
 */
float
dotF16Scalar(const float *a, const std::uint16_t *b, std::size_t d)
{
    float lane[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    std::size_t t = 0;
    for (; t + 8 <= d; t += 8) {
        for (std::size_t j = 0; j < 8; ++j)
            lane[j] = std::fma(a[t + j], halfToFloat(b[t + j]),
                               lane[j]);
    }
    float s04 = lane[0] + lane[4];
    float s15 = lane[1] + lane[5];
    float s26 = lane[2] + lane[6];
    float s37 = lane[3] + lane[7];
    float acc = (s04 + s26) + (s15 + s37);
    for (; t < d; ++t)
        acc = std::fma(a[t], halfToFloat(b[t]), acc);
    return acc;
}

void
gemmNtF16Scalar(const float *a, std::size_t n, const std::uint16_t *b,
                std::size_t m, std::size_t d, float *c,
                std::size_t ldc)
{
    for (std::size_t i = 0; i < n; ++i) {
        const float *ra = a + i * d;
        float *rc = c + i * ldc;
        for (std::size_t j = 0; j < m; ++j)
            rc[j] = dotF16Scalar(ra, b + j * d, d);
    }
}

/**
 * Blocked-fusion shortlist scoring: the dots are gemmNtScalar's own
 * bits (it runs into the output tile), then the epilogue rewrites
 * them in place. This TU has no FMA target, so `t - (p + p)` cannot
 * contract and equals the historical `qn + cnorm - 2.0f * prod`
 * exactly (p + p == 2.0f * p bitwise).
 */
void
shortlistScoreScalar(const float *a, const float *qn, std::size_t n,
                     const float *b, const float *cnorm,
                     std::size_t m, std::size_t d, float *out,
                     std::size_t ldo)
{
    gemmNtScalar(a, n, b, m, d, out, ldo);
    for (std::size_t i = 0; i < n; ++i) {
        float *row = out + i * ldo;
        const float q = qn[i];
        for (std::size_t j = 0; j < m; ++j) {
            const float t = q + cnorm[j];
            const float p = row[j];
            row[j] = t - (p + p);
        }
    }
}

void
shortlistScoreF16Scalar(const float *a, const float *qn,
                        std::size_t n, const std::uint16_t *b,
                        const float *cnorm, std::size_t m,
                        std::size_t d, float *out, std::size_t ldo)
{
    gemmNtF16Scalar(a, n, b, m, d, out, ldo);
    for (std::size_t i = 0; i < n; ++i) {
        float *row = out + i * ldo;
        const float q = qn[i];
        for (std::size_t j = 0; j < m; ++j) {
            const float t = q + cnorm[j];
            const float p = row[j];
            row[j] = t - (p + p);
        }
    }
}

} // namespace

const Kernels &
scalarKernels()
{
    static const Kernels k{dotScalar,      l2sqScalar,
                           normSqScalar,   axpyScalar,
                           dotBatchScalar, dotIdxScalar,
                           l2sqBatchScalar, gemmNtScalar,
                           adcAccumScalar, adcBatchScalar,
                           adcBatch4Scalar, adcBatchMultiScalar,
                           adcBatch4MultiScalar, gemmNtF16Scalar,
                           shortlistScoreScalar,
                           shortlistScoreF16Scalar};
    return k;
}

} // namespace reach::simd::detail
