/**
 * @file
 * AVX2/FMA kernels. The whole file is compiled for the generic
 * target; every function carries target("avx2,fma") so the binary
 * still loads on CPUs without AVX2 (the dispatcher never calls these
 * there), and non-x86 builds compile an empty translation unit.
 *
 * Arithmetic layout: every dot-family value is one 8-lane FMA
 * accumulator chain over d, a fixed-order horizontal sum, then a
 * scalar tail for d % 8 — the batch kernels run the *same* per-row
 * sequence (just interleaved across rows for ILP), which is what
 * makes the cross-kernel bitwise invariants in simd.hh hold.
 */

#include "simd/kernels.hh"

#if REACH_SIMD_HAVE_X86_AVX2

#include <immintrin.h>

#include <cmath>

#include "simd/half.hh"

#define REACH_AVX2 __attribute__((target("avx2,fma")))

/**
 * The fp16 kernels additionally need F16C for VCVTPH2PS; the
 * dispatcher patches them back to scalar when the CPU lacks it, so
 * nothing else in this file depends on the extension.
 */
#define REACH_AVX2_F16 __attribute__((target("avx2,fma,f16c")))

namespace reach::simd::detail
{

namespace
{

/** Fixed-order reduction of one 8-lane accumulator. */
REACH_AVX2 inline float
hsum256(__m256 v)
{
    __m128 lo = _mm256_castps256_ps128(v);
    __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
    return _mm_cvtss_f32(s);
}

REACH_AVX2 float
dotAvx2(const float *a, const float *b, std::size_t d)
{
    __m256 acc = _mm256_setzero_ps();
    std::size_t t = 0;
    for (; t + 8 <= d; t += 8) {
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + t),
                              _mm256_loadu_ps(b + t), acc);
    }
    float s = hsum256(acc);
    for (; t < d; ++t)
        s += a[t] * b[t];
    return s;
}

REACH_AVX2 float
l2sqAvx2(const float *a, const float *b, std::size_t d)
{
    __m256 acc = _mm256_setzero_ps();
    std::size_t t = 0;
    for (; t + 8 <= d; t += 8) {
        __m256 diff = _mm256_sub_ps(_mm256_loadu_ps(a + t),
                                    _mm256_loadu_ps(b + t));
        acc = _mm256_fmadd_ps(diff, diff, acc);
    }
    float s = hsum256(acc);
    for (; t < d; ++t) {
        float diff = a[t] - b[t];
        s += diff * diff;
    }
    return s;
}

REACH_AVX2 float
normSqAvx2(const float *a, std::size_t d)
{
    return dotAvx2(a, a, d);
}

REACH_AVX2 void
axpyAvx2(float alpha, const float *x, float *y, std::size_t d)
{
    __m256 va = _mm256_set1_ps(alpha);
    std::size_t t = 0;
    for (; t + 8 <= d; t += 8) {
        __m256 vy = _mm256_fmadd_ps(va, _mm256_loadu_ps(x + t),
                                    _mm256_loadu_ps(y + t));
        _mm256_storeu_ps(y + t, vy);
    }
    for (; t < d; ++t)
        y[t] += alpha * x[t];
}

/**
 * Four rows per step: four independent accumulator chains give the
 * FMA units work to hide latency, while each chain performs exactly
 * the dotAvx2 sequence for its row.
 */
REACH_AVX2 void
dotBatchAvx2(const float *q, const float *rows, std::size_t n,
             std::size_t d, float *out)
{
    std::size_t r = 0;
    for (; r + 4 <= n; r += 4) {
        const float *r0 = rows + r * d;
        const float *r1 = r0 + d;
        const float *r2 = r1 + d;
        const float *r3 = r2 + d;
        __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
        __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
        std::size_t t = 0;
        for (; t + 8 <= d; t += 8) {
            __m256 vq = _mm256_loadu_ps(q + t);
            a0 = _mm256_fmadd_ps(vq, _mm256_loadu_ps(r0 + t), a0);
            a1 = _mm256_fmadd_ps(vq, _mm256_loadu_ps(r1 + t), a1);
            a2 = _mm256_fmadd_ps(vq, _mm256_loadu_ps(r2 + t), a2);
            a3 = _mm256_fmadd_ps(vq, _mm256_loadu_ps(r3 + t), a3);
        }
        float s0 = hsum256(a0), s1 = hsum256(a1);
        float s2 = hsum256(a2), s3 = hsum256(a3);
        for (; t < d; ++t) {
            float qv = q[t];
            s0 += qv * r0[t];
            s1 += qv * r1[t];
            s2 += qv * r2[t];
            s3 += qv * r3[t];
        }
        out[r] = s0;
        out[r + 1] = s1;
        out[r + 2] = s2;
        out[r + 3] = s3;
    }
    for (; r < n; ++r)
        out[r] = dotAvx2(q, rows + r * d, d);
}

/**
 * Indexed-row variant of dotBatchAvx2: same four interleaved per-row
 * chains, but row pointers come from ids[] instead of a stride — the
 * scattered-candidate (rerank) shape without a gather copy.
 */
REACH_AVX2 void
dotIdxAvx2(const float *q, const float *base, const std::uint32_t *ids,
           std::size_t n, std::size_t d, float *out)
{
    std::size_t r = 0;
    for (; r + 4 <= n; r += 4) {
        const float *r0 = base + std::size_t(ids[r]) * d;
        const float *r1 = base + std::size_t(ids[r + 1]) * d;
        const float *r2 = base + std::size_t(ids[r + 2]) * d;
        const float *r3 = base + std::size_t(ids[r + 3]) * d;
        __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
        __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
        std::size_t t = 0;
        for (; t + 8 <= d; t += 8) {
            __m256 vq = _mm256_loadu_ps(q + t);
            a0 = _mm256_fmadd_ps(vq, _mm256_loadu_ps(r0 + t), a0);
            a1 = _mm256_fmadd_ps(vq, _mm256_loadu_ps(r1 + t), a1);
            a2 = _mm256_fmadd_ps(vq, _mm256_loadu_ps(r2 + t), a2);
            a3 = _mm256_fmadd_ps(vq, _mm256_loadu_ps(r3 + t), a3);
        }
        float s0 = hsum256(a0), s1 = hsum256(a1);
        float s2 = hsum256(a2), s3 = hsum256(a3);
        for (; t < d; ++t) {
            float qv = q[t];
            s0 += qv * r0[t];
            s1 += qv * r1[t];
            s2 += qv * r2[t];
            s3 += qv * r3[t];
        }
        out[r] = s0;
        out[r + 1] = s1;
        out[r + 2] = s2;
        out[r + 3] = s3;
    }
    for (; r < n; ++r)
        out[r] = dotAvx2(q, base + std::size_t(ids[r]) * d, d);
}

REACH_AVX2 void
l2sqBatchAvx2(const float *q, const float *rows, std::size_t n,
              std::size_t d, float *out)
{
    std::size_t r = 0;
    for (; r + 4 <= n; r += 4) {
        const float *r0 = rows + r * d;
        const float *r1 = r0 + d;
        const float *r2 = r1 + d;
        const float *r3 = r2 + d;
        __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
        __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
        std::size_t t = 0;
        for (; t + 8 <= d; t += 8) {
            __m256 vq = _mm256_loadu_ps(q + t);
            __m256 d0 = _mm256_sub_ps(vq, _mm256_loadu_ps(r0 + t));
            __m256 d1 = _mm256_sub_ps(vq, _mm256_loadu_ps(r1 + t));
            __m256 d2 = _mm256_sub_ps(vq, _mm256_loadu_ps(r2 + t));
            __m256 d3 = _mm256_sub_ps(vq, _mm256_loadu_ps(r3 + t));
            a0 = _mm256_fmadd_ps(d0, d0, a0);
            a1 = _mm256_fmadd_ps(d1, d1, a1);
            a2 = _mm256_fmadd_ps(d2, d2, a2);
            a3 = _mm256_fmadd_ps(d3, d3, a3);
        }
        float s0 = hsum256(a0), s1 = hsum256(a1);
        float s2 = hsum256(a2), s3 = hsum256(a3);
        for (; t < d; ++t) {
            float qv = q[t];
            float e0 = qv - r0[t], e1 = qv - r1[t];
            float e2 = qv - r2[t], e3 = qv - r3[t];
            s0 += e0 * e0;
            s1 += e1 * e1;
            s2 += e2 * e2;
            s3 += e3 * e3;
        }
        out[r] = s0;
        out[r + 1] = s1;
        out[r + 2] = s2;
        out[r + 3] = s3;
    }
    for (; r < n; ++r)
        out[r] = l2sqAvx2(q, rows + r * d, d);
}

/**
 * ADC: expand 8 u8 codes to i32 lanes, add the per-lane LUT row
 * offsets (lane j reads subspace s+j, i.e. base lut + s*stride plus
 * j*stride + code), gather, accumulate with plain adds. Lane j sums
 * subspaces s, s+8, ... and hsum256 folds the lanes — the exact
 * order adcAccumScalar reproduces, so the backends agree bitwise.
 * The row stride is a runtime parameter: a 16-entry 4-bit table is
 * gathered as eight 16-float rows and the lanes never stray past a
 * row's valid entries.
 */
REACH_AVX2 inline __m256i
adcLaneBase(std::size_t stride)
{
    const int st = static_cast<int>(stride);
    return _mm256_setr_epi32(0 * st, 1 * st, 2 * st, 3 * st, 4 * st,
                             5 * st, 6 * st, 7 * st);
}

REACH_AVX2 float
adcAccumAvx2(const float *lut, std::size_t stride,
             const std::uint8_t *code, std::size_t m)
{
    const __m256i base = adcLaneBase(stride);
    __m256 acc = _mm256_setzero_ps();
    std::size_t s = 0;
    for (; s + 8 <= m; s += 8) {
        __m128i raw = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(code + s));
        __m256i idx = _mm256_add_epi32(_mm256_cvtepu8_epi32(raw), base);
        acc = _mm256_add_ps(
            acc, _mm256_i32gather_ps(lut + s * stride, idx, 4));
    }
    float out = hsum256(acc);
    for (; s < m; ++s)
        out += lut[s * stride + code[s]];
    return out;
}

/**
 * Four candidate rows per step keep 32 gather lanes in flight; each
 * row's chain is exactly the adcAccumAvx2 sequence.
 */
REACH_AVX2 void
adcBatchAvx2(const float *lut, std::size_t stride,
             const std::uint8_t *codes, std::size_t n, std::size_t m,
             float *out)
{
    const __m256i base = adcLaneBase(stride);
    std::size_t r = 0;
    for (; r + 4 <= n; r += 4) {
        const std::uint8_t *c0 = codes + r * m;
        const std::uint8_t *c1 = c0 + m;
        const std::uint8_t *c2 = c1 + m;
        const std::uint8_t *c3 = c2 + m;
        __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
        __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
        std::size_t s = 0;
        for (; s + 8 <= m; s += 8) {
            const float *row = lut + s * stride;
            __m256i i0 = _mm256_add_epi32(
                _mm256_cvtepu8_epi32(_mm_loadl_epi64(
                    reinterpret_cast<const __m128i *>(c0 + s))),
                base);
            __m256i i1 = _mm256_add_epi32(
                _mm256_cvtepu8_epi32(_mm_loadl_epi64(
                    reinterpret_cast<const __m128i *>(c1 + s))),
                base);
            __m256i i2 = _mm256_add_epi32(
                _mm256_cvtepu8_epi32(_mm_loadl_epi64(
                    reinterpret_cast<const __m128i *>(c2 + s))),
                base);
            __m256i i3 = _mm256_add_epi32(
                _mm256_cvtepu8_epi32(_mm_loadl_epi64(
                    reinterpret_cast<const __m128i *>(c3 + s))),
                base);
            a0 = _mm256_add_ps(a0, _mm256_i32gather_ps(row, i0, 4));
            a1 = _mm256_add_ps(a1, _mm256_i32gather_ps(row, i1, 4));
            a2 = _mm256_add_ps(a2, _mm256_i32gather_ps(row, i2, 4));
            a3 = _mm256_add_ps(a3, _mm256_i32gather_ps(row, i3, 4));
        }
        float s0 = hsum256(a0), s1 = hsum256(a1);
        float s2 = hsum256(a2), s3 = hsum256(a3);
        for (; s < m; ++s) {
            const float *row = lut + s * stride;
            s0 += row[c0[s]];
            s1 += row[c1[s]];
            s2 += row[c2[s]];
            s3 += row[c3[s]];
        }
        out[r] = s0;
        out[r + 1] = s1;
        out[r + 2] = s2;
        out[r + 3] = s3;
    }
    for (; r < n; ++r)
        out[r] = adcAccumAvx2(lut, stride, codes + r * m, m);
}

/** Dequantize 8 u16 sums: out = fma(scale, float(sum), bias). */
REACH_AVX2 inline void
adc4Emit8(__m128i sums, __m256 vscale, __m256 vbias, float *dst)
{
    __m256 f = _mm256_cvtepi32_ps(_mm256_cvtepu16_epi32(sums));
    _mm256_storeu_ps(dst, _mm256_fmadd_ps(vscale, f, vbias));
}

/**
 * 4-bit FastScan: per block of 32 candidates, each packed row feeds
 * two register-resident shuffles — the low nibbles index the even
 * subspace's 16-byte table (broadcast to both 128-bit halves), the
 * high nibbles the odd subspace's — and the u8 results widen into
 * two u16 accumulators (unpack lo/hi against zero). 32 table
 * lookups per shuffle replace 8 gather lanes. After the rows, the
 * four u16 octets dequantize in candidate order: acc0 holds lanes
 * 0-7 / 16-23, acc1 lanes 8-15 / 24-31. A partial last block lands
 * in a stack buffer so only out[0, n) is written, matching the
 * scalar reference exactly (integer sums + one fused multiply-add).
 */
REACH_AVX2 void
adcBatch4Avx2(const std::uint8_t *lut, const std::uint8_t *blocks,
              std::size_t n, std::size_t m, float scale, float bias,
              float *out)
{
    const std::size_t pairs = m / 2;
    const __m256i low4 = _mm256_set1_epi8(0x0F);
    const __m256i zero = _mm256_setzero_si256();
    const __m256 vscale = _mm256_set1_ps(scale);
    const __m256 vbias = _mm256_set1_ps(bias);
    for (std::size_t done = 0, b = 0; done < n;
         done += kAdc4BlockCands, ++b) {
        const std::uint8_t *blk = blocks + b * adc4BlockBytes(m);
        __m256i acc0 = zero;
        __m256i acc1 = zero;
        for (std::size_t p = 0; p < pairs; ++p) {
            __m256i packed = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(
                    blk + p * kAdc4BlockCands));
            __m256i lo = _mm256_and_si256(packed, low4);
            __m256i hi = _mm256_and_si256(
                _mm256_srli_epi16(packed, 4), low4);
            __m256i lutLo = _mm256_broadcastsi128_si256(
                _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                    lut + 2 * p * kAdc4LutStride)));
            __m256i lutHi = _mm256_broadcastsi128_si256(
                _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                    lut + (2 * p + 1) * kAdc4LutStride)));
            __m256i vlo = _mm256_shuffle_epi8(lutLo, lo);
            __m256i vhi = _mm256_shuffle_epi8(lutHi, hi);
            acc0 = _mm256_add_epi16(acc0,
                                    _mm256_unpacklo_epi8(vlo, zero));
            acc1 = _mm256_add_epi16(acc1,
                                    _mm256_unpackhi_epi8(vlo, zero));
            acc0 = _mm256_add_epi16(acc0,
                                    _mm256_unpacklo_epi8(vhi, zero));
            acc1 = _mm256_add_epi16(acc1,
                                    _mm256_unpackhi_epi8(vhi, zero));
        }
        if (m % 2) {
            // Odd tail subspace: only the low nibbles are codes (the
            // packer zeroes the phantom high nibbles).
            __m256i packed = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(
                    blk + pairs * kAdc4BlockCands));
            __m256i lo = _mm256_and_si256(packed, low4);
            __m256i lutLo = _mm256_broadcastsi128_si256(
                _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                    lut + (m - 1) * kAdc4LutStride)));
            __m256i vlo = _mm256_shuffle_epi8(lutLo, lo);
            acc0 = _mm256_add_epi16(acc0,
                                    _mm256_unpacklo_epi8(vlo, zero));
            acc1 = _mm256_add_epi16(acc1,
                                    _mm256_unpackhi_epi8(vlo, zero));
        }
        float buf[kAdc4BlockCands];
        const std::size_t valid = n - done;
        float *dst = valid >= kAdc4BlockCands ? out + done : buf;
        adc4Emit8(_mm256_castsi256_si128(acc0), vscale, vbias, dst);
        adc4Emit8(_mm256_castsi256_si128(acc1), vscale, vbias,
                  dst + 8);
        adc4Emit8(_mm256_extracti128_si256(acc0, 1), vscale, vbias,
                  dst + 16);
        adc4Emit8(_mm256_extracti128_si256(acc1, 1), vscale, vbias,
                  dst + 24);
        if (dst == buf) {
            for (std::size_t c = 0; c < valid; ++c)
                out[done + c] = buf[c];
        }
    }
}

/**
 * Multi-query gather ADC: the shared code stream advances one
 * kAdcMultiChunk-candidate chunk at a time and every live query
 * sweeps the current chunk through adcBatchAvx2 before the next is
 * touched, so a probed cluster's code block crosses the memory
 * hierarchy once per call instead of once per probing query. Each
 * candidate still runs the adcAccumAvx2 chain regardless of where
 * the chunk boundaries fall, so the output bits match per-query
 * adcBatch calls exactly.
 */
REACH_AVX2 void
adcBatchMultiAvx2(const float *const *luts, std::size_t stride,
                  const std::size_t *ns, std::size_t nq,
                  const std::uint8_t *codes, std::size_t m,
                  float *const *outs)
{
    std::size_t nmax = 0;
    for (std::size_t g = 0; g < nq; ++g)
        nmax = nmax < ns[g] ? ns[g] : nmax;
    for (std::size_t c0 = 0; c0 < nmax; c0 += kAdcMultiChunk) {
        for (std::size_t g = 0; g < nq; ++g) {
            if (ns[g] <= c0)
                continue;
            const std::size_t cnt = ns[g] - c0 < kAdcMultiChunk
                                        ? ns[g] - c0
                                        : kAdcMultiChunk;
            adcBatchAvx2(luts[g], stride, codes + c0 * m, cnt, m,
                         outs[g] + c0);
        }
    }
}

/**
 * Multi-query FastScan: one 32-candidate block is loaded and its
 * nibbles unpacked once into a stack arena, then every live query
 * shuffles its own register-resident tables against the arena. The
 * per-query accumulation differs from adcBatch4Avx2 in instruction
 * selection only: unpacklo/hi(vlo, vhi) interleaves the two shuffle
 * results and _mm256_maddubs_epi16 against ones sums each u8 pair
 * into the u16 lane — the identical exact integer sum the four
 * widen-and-add steps produce (no saturation: entries are <= 255 and
 * 255 + 255 < 32767), finished by the same fused multiply-add. So
 * the bits match per-query adcBatch4 calls at any block position.
 */
REACH_AVX2 void
adcBatch4MultiAvx2(const std::uint8_t *const *luts,
                   const std::size_t *ns, std::size_t nq,
                   const std::uint8_t *blocks, std::size_t m,
                   const float *scales, const float *biases,
                   float *const *outs)
{
    // Arena bound: validatePqConfig caps 4-bit m at 256 (128 packed
    // rows). Anything larger degrades to per-query block sweeps.
    constexpr std::size_t kMaxRows = 128;
    const std::size_t rows = adc4CodeBytes(m);
    const std::size_t blockBytes = adc4BlockBytes(m);
    std::size_t nmax = 0;
    for (std::size_t g = 0; g < nq; ++g)
        nmax = nmax < ns[g] ? ns[g] : nmax;
    if (rows > kMaxRows) {
        for (std::size_t c0 = 0; c0 < nmax; c0 += kAdcMultiChunk) {
            const std::uint8_t *chunk =
                blocks + c0 / kAdc4BlockCands * blockBytes;
            for (std::size_t g = 0; g < nq; ++g) {
                if (ns[g] <= c0)
                    continue;
                const std::size_t cnt = ns[g] - c0 < kAdcMultiChunk
                                            ? ns[g] - c0
                                            : kAdcMultiChunk;
                adcBatch4Avx2(luts[g], chunk, cnt, m, scales[g],
                              biases[g], outs[g] + c0);
            }
        }
        return;
    }
    const std::size_t pairs = m / 2;
    const __m256i low4 = _mm256_set1_epi8(0x0F);
    const __m256i zero = _mm256_setzero_si256();
    const __m256i ones = _mm256_set1_epi8(1);
    alignas(32) std::uint8_t nib[kMaxRows * 2 * kAdc4BlockCands];
    for (std::size_t done = 0, b = 0; done < nmax;
         done += kAdc4BlockCands, ++b) {
        const std::uint8_t *blk = blocks + b * blockBytes;
        _mm_prefetch(reinterpret_cast<const char *>(blk + blockBytes),
                     _MM_HINT_T0);
        for (std::size_t p = 0; p < rows; ++p) {
            __m256i packed = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(
                    blk + p * kAdc4BlockCands));
            __m256i lo = _mm256_and_si256(packed, low4);
            __m256i hi = _mm256_and_si256(
                _mm256_srli_epi16(packed, 4), low4);
            _mm256_store_si256(
                reinterpret_cast<__m256i *>(nib + p * 64), lo);
            _mm256_store_si256(
                reinterpret_cast<__m256i *>(nib + p * 64 + 32), hi);
        }
        for (std::size_t g = 0; g < nq; ++g) {
            if (ns[g] <= done)
                continue;
            const std::uint8_t *lut = luts[g];
            __m256i acc0 = zero;
            __m256i acc1 = zero;
            for (std::size_t p = 0; p < pairs; ++p) {
                __m256i lo = _mm256_load_si256(
                    reinterpret_cast<const __m256i *>(nib + p * 64));
                __m256i hi = _mm256_load_si256(
                    reinterpret_cast<const __m256i *>(nib + p * 64 +
                                                      32));
                __m256i lutLo = _mm256_broadcastsi128_si256(
                    _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                        lut + 2 * p * kAdc4LutStride)));
                __m256i lutHi = _mm256_broadcastsi128_si256(
                    _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                        lut + (2 * p + 1) * kAdc4LutStride)));
                __m256i vlo = _mm256_shuffle_epi8(lutLo, lo);
                __m256i vhi = _mm256_shuffle_epi8(lutHi, hi);
                acc0 = _mm256_add_epi16(
                    acc0, _mm256_maddubs_epi16(
                              _mm256_unpacklo_epi8(vlo, vhi), ones));
                acc1 = _mm256_add_epi16(
                    acc1, _mm256_maddubs_epi16(
                              _mm256_unpackhi_epi8(vlo, vhi), ones));
            }
            if (m % 2) {
                // Odd tail subspace: only the low nibbles are codes.
                __m256i lo = _mm256_load_si256(
                    reinterpret_cast<const __m256i *>(nib +
                                                      pairs * 64));
                __m256i lutLo = _mm256_broadcastsi128_si256(
                    _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                        lut + (m - 1) * kAdc4LutStride)));
                __m256i vlo = _mm256_shuffle_epi8(lutLo, lo);
                acc0 = _mm256_add_epi16(
                    acc0, _mm256_unpacklo_epi8(vlo, zero));
                acc1 = _mm256_add_epi16(
                    acc1, _mm256_unpackhi_epi8(vlo, zero));
            }
            const __m256 vscale = _mm256_set1_ps(scales[g]);
            const __m256 vbias = _mm256_set1_ps(biases[g]);
            float buf[kAdc4BlockCands];
            const std::size_t valid = ns[g] - done;
            float *dst =
                valid >= kAdc4BlockCands ? outs[g] + done : buf;
            adc4Emit8(_mm256_castsi256_si128(acc0), vscale, vbias,
                      dst);
            adc4Emit8(_mm256_castsi256_si128(acc1), vscale, vbias,
                      dst + 8);
            adc4Emit8(_mm256_extracti128_si256(acc0, 1), vscale,
                      vbias, dst + 16);
            adc4Emit8(_mm256_extracti128_si256(acc1, 1), vscale,
                      vbias, dst + 24);
            if (dst == buf) {
                for (std::size_t c = 0; c < valid; ++c)
                    outs[g][done + c] = buf[c];
            }
        }
    }
}

/**
 * 2x4 register block: eight live accumulators (two A rows x four B
 * rows), each an 8-lane FMA chain over d. Remainders fall back to
 * 1x4 and then 1x1 tiles.
 */
REACH_AVX2 void
gemmNtAvx2(const float *a, std::size_t n, const float *b,
           std::size_t m, std::size_t d, float *c, std::size_t ldc)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const float *a0 = a + i * d;
        const float *a1 = a0 + d;
        float *c0 = c + i * ldc;
        float *c1 = c0 + ldc;
        std::size_t j = 0;
        for (; j + 4 <= m; j += 4) {
            const float *b0 = b + j * d;
            const float *b1 = b0 + d;
            const float *b2 = b1 + d;
            const float *b3 = b2 + d;
            __m256 p00 = _mm256_setzero_ps(),
                   p01 = _mm256_setzero_ps(),
                   p02 = _mm256_setzero_ps(),
                   p03 = _mm256_setzero_ps();
            __m256 p10 = _mm256_setzero_ps(),
                   p11 = _mm256_setzero_ps(),
                   p12 = _mm256_setzero_ps(),
                   p13 = _mm256_setzero_ps();
            std::size_t t = 0;
            for (; t + 8 <= d; t += 8) {
                __m256 va0 = _mm256_loadu_ps(a0 + t);
                __m256 va1 = _mm256_loadu_ps(a1 + t);
                __m256 vb0 = _mm256_loadu_ps(b0 + t);
                __m256 vb1 = _mm256_loadu_ps(b1 + t);
                __m256 vb2 = _mm256_loadu_ps(b2 + t);
                __m256 vb3 = _mm256_loadu_ps(b3 + t);
                p00 = _mm256_fmadd_ps(va0, vb0, p00);
                p01 = _mm256_fmadd_ps(va0, vb1, p01);
                p02 = _mm256_fmadd_ps(va0, vb2, p02);
                p03 = _mm256_fmadd_ps(va0, vb3, p03);
                p10 = _mm256_fmadd_ps(va1, vb0, p10);
                p11 = _mm256_fmadd_ps(va1, vb1, p11);
                p12 = _mm256_fmadd_ps(va1, vb2, p12);
                p13 = _mm256_fmadd_ps(va1, vb3, p13);
            }
            float s00 = hsum256(p00), s01 = hsum256(p01);
            float s02 = hsum256(p02), s03 = hsum256(p03);
            float s10 = hsum256(p10), s11 = hsum256(p11);
            float s12 = hsum256(p12), s13 = hsum256(p13);
            for (; t < d; ++t) {
                float v0 = a0[t], v1 = a1[t];
                s00 += v0 * b0[t];
                s01 += v0 * b1[t];
                s02 += v0 * b2[t];
                s03 += v0 * b3[t];
                s10 += v1 * b0[t];
                s11 += v1 * b1[t];
                s12 += v1 * b2[t];
                s13 += v1 * b3[t];
            }
            c0[j] = s00;
            c0[j + 1] = s01;
            c0[j + 2] = s02;
            c0[j + 3] = s03;
            c1[j] = s10;
            c1[j + 1] = s11;
            c1[j + 2] = s12;
            c1[j + 3] = s13;
        }
        for (; j < m; ++j) {
            const float *bj = b + j * d;
            c0[j] = dotAvx2(a0, bj, d);
            c1[j] = dotAvx2(a1, bj, d);
        }
    }
    if (i < n) {
        dotBatchAvx2(a + i * d, b, m, d, c + i * ldc);
        // dotBatch writes m contiguous values == the final C row.
    }
}

/**
 * fp16 dot: one 8-lane FMA chain whose B operand streams through
 * VCVTPH2PS, hsum256, then an fma tail converting through the
 * software halfToFloat (bit-identical to the instruction, half.hh).
 * dotF16Scalar emulates exactly this sequence, so the backends agree
 * bitwise — the contract the shortlist fp16 determinism tests pin.
 */
REACH_AVX2_F16 float
dotF16Avx2(const float *a, const std::uint16_t *b, std::size_t d)
{
    __m256 acc = _mm256_setzero_ps();
    std::size_t t = 0;
    for (; t + 8 <= d; t += 8) {
        __m256 vb = _mm256_cvtph_ps(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b + t)));
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + t), vb, acc);
    }
    float s = hsum256(acc);
    for (; t < d; ++t)
        s = std::fma(a[t], halfToFloat(b[t]), s);
    return s;
}

/**
 * Four centroid columns per step (four independent chains, the
 * dotBatchAvx2 shape) amortize each query load across four converts;
 * every chain performs exactly the dotF16Avx2 sequence for its
 * column, so the tiling never changes a value.
 */
REACH_AVX2_F16 void
gemmNtF16Avx2(const float *a, std::size_t n, const std::uint16_t *b,
              std::size_t m, std::size_t d, float *c, std::size_t ldc)
{
    for (std::size_t i = 0; i < n; ++i) {
        const float *ra = a + i * d;
        float *rc = c + i * ldc;
        std::size_t j = 0;
        for (; j + 4 <= m; j += 4) {
            const std::uint16_t *b0 = b + j * d;
            const std::uint16_t *b1 = b0 + d;
            const std::uint16_t *b2 = b1 + d;
            const std::uint16_t *b3 = b2 + d;
            __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
            __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
            std::size_t t = 0;
            for (; t + 8 <= d; t += 8) {
                __m256 va = _mm256_loadu_ps(ra + t);
                a0 = _mm256_fmadd_ps(
                    va,
                    _mm256_cvtph_ps(_mm_loadu_si128(
                        reinterpret_cast<const __m128i *>(b0 + t))),
                    a0);
                a1 = _mm256_fmadd_ps(
                    va,
                    _mm256_cvtph_ps(_mm_loadu_si128(
                        reinterpret_cast<const __m128i *>(b1 + t))),
                    a1);
                a2 = _mm256_fmadd_ps(
                    va,
                    _mm256_cvtph_ps(_mm_loadu_si128(
                        reinterpret_cast<const __m128i *>(b2 + t))),
                    a2);
                a3 = _mm256_fmadd_ps(
                    va,
                    _mm256_cvtph_ps(_mm_loadu_si128(
                        reinterpret_cast<const __m128i *>(b3 + t))),
                    a3);
            }
            float s0 = hsum256(a0), s1 = hsum256(a1);
            float s2 = hsum256(a2), s3 = hsum256(a3);
            for (; t < d; ++t) {
                float av = ra[t];
                s0 = std::fma(av, halfToFloat(b0[t]), s0);
                s1 = std::fma(av, halfToFloat(b1[t]), s1);
                s2 = std::fma(av, halfToFloat(b2[t]), s2);
                s3 = std::fma(av, halfToFloat(b3[t]), s3);
            }
            rc[j] = s0;
            rc[j + 1] = s1;
            rc[j + 2] = s2;
            rc[j + 3] = s3;
        }
        for (; j < m; ++j)
            rc[j] = dotF16Avx2(ra, b + j * d, d);
    }
}

/**
 * In-place shortlist epilogue over an (n x m) tile of dot products:
 * out = (qn + cnorm) - (p + p). Explicit intrinsic adds/sub in the
 * vector body and a multiply-free scalar tail, so this FMA-target TU
 * cannot contract anything — the bits equal the generic-TU
 * `qn + cnorm - 2.0f * p` the historical path produced (p + p is
 * exactly 2 * p).
 */
REACH_AVX2 void
scoreEpilogueAvx2(const float *qn, std::size_t n, const float *cnorm,
                  std::size_t m, float *out, std::size_t ldo)
{
    for (std::size_t i = 0; i < n; ++i) {
        float *row = out + i * ldo;
        const float q = qn[i];
        const __m256 vq = _mm256_set1_ps(q);
        std::size_t j = 0;
        for (; j + 8 <= m; j += 8) {
            __m256 vt = _mm256_add_ps(vq, _mm256_loadu_ps(cnorm + j));
            __m256 vp = _mm256_loadu_ps(row + j);
            _mm256_storeu_ps(
                row + j, _mm256_sub_ps(vt, _mm256_add_ps(vp, vp)));
        }
        for (; j < m; ++j) {
            const float t = q + cnorm[j];
            const float p = row[j];
            row[j] = t - (p + p);
        }
    }
}

REACH_AVX2 void
shortlistScoreAvx2(const float *a, const float *qn, std::size_t n,
                   const float *b, const float *cnorm, std::size_t m,
                   std::size_t d, float *out, std::size_t ldo)
{
    gemmNtAvx2(a, n, b, m, d, out, ldo);
    scoreEpilogueAvx2(qn, n, cnorm, m, out, ldo);
}

REACH_AVX2_F16 void
shortlistScoreF16Avx2(const float *a, const float *qn, std::size_t n,
                      const std::uint16_t *b, const float *cnorm,
                      std::size_t m, std::size_t d, float *out,
                      std::size_t ldo)
{
    gemmNtF16Avx2(a, n, b, m, d, out, ldo);
    scoreEpilogueAvx2(qn, n, cnorm, m, out, ldo);
}

} // namespace

const Kernels &
avx2Kernels()
{
    static const Kernels k{dotAvx2,      l2sqAvx2,   normSqAvx2,
                           axpyAvx2,     dotBatchAvx2, dotIdxAvx2,
                           l2sqBatchAvx2, gemmNtAvx2,
                           adcAccumAvx2, adcBatchAvx2, adcBatch4Avx2,
                           adcBatchMultiAvx2, adcBatch4MultiAvx2,
                           gemmNtF16Avx2, shortlistScoreAvx2,
                           shortlistScoreF16Avx2};
    return k;
}

} // namespace reach::simd::detail

#endif // REACH_SIMD_HAVE_X86_AVX2
