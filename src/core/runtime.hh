/**
 * @file
 * The ReACH runtime library: the uniform, library-based programming
 * interface of paper §III (Listings 1-3).
 *
 * A ReACH application has two parts:
 *  - a *configuration* (Listing 2): register accelerators from the
 *    template library, create fixed buffers at each level, and create
 *    streams between levels with broadcast / collect / pair patterns;
 *  - *host code* (Listing 3): a synchronous-looking loop that
 *    enqueues query batches and calls execute() on the registered
 *    accelerators.
 *
 * The runtime translates those calls into GAM jobs (one per loop
 * iteration), wires task dependencies from the stream bindings, and
 * lets the GAM pipeline iterations asynchronously — the paper's
 * "synchronous programming, asynchronous task flow" co-design.
 */

#ifndef REACH_CORE_RUNTIME_HH
#define REACH_CORE_RUNTIME_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/cbir_deployment.hh"
#include "core/reach_system.hh"
#include "gam/task.hh"

namespace reach::core
{

using Level = acc::Level;

/** Stream communication patterns (Listing 1). */
enum class StreamType
{
    BroadCast,
    Collect,
    Pair,
};

/** Roles a kernel argument can play (from the template's dataflow). */
enum class ArgRole
{
    StreamIn,
    StreamOut,
    Params,
    Database,
};

/** Handle to a fixed buffer (CreateFixedBuffer). */
struct BufferHandle
{
    std::uint32_t id = ~0u;
    bool valid() const { return id != ~0u; }
};

/** Handle to an inter-level stream (CreateStream). */
struct StreamHandle
{
    std::uint32_t id = ~0u;
    bool valid() const { return id != ~0u; }
};

class ReachRuntime;

/** Handle to a registered accelerator (RegisterAcc). */
class AccHandle
{
  public:
    AccHandle() = default;

    /** Bind argument @p index to a buffer / stream (Listing 2). */
    void setArgs(std::uint32_t index, BufferHandle buffer);
    void setArgs(std::uint32_t index, StreamHandle stream);

    /**
     * Override the per-execute work estimate (ops / bytes). Without
     * it, the runtime derives work from the template's dataflow and
     * the bound buffer/stream sizes.
     */
    void setWork(const acc::WorkUnit &work);

    /** Queue one execution in the current job (Listing 3). */
    void execute(std::uint32_t thread_id);

    bool valid() const { return rt != nullptr; }

  private:
    friend class ReachRuntime;
    AccHandle(ReachRuntime *owner, std::uint32_t acc_id)
        : rt(owner), id(acc_id)
    {}

    ReachRuntime *rt = nullptr;
    std::uint32_t id = ~0u;
};

class ReachRuntime
{
  public:
    explicit ReachRuntime(const SystemConfig &cfg = {});

    ReachSystem &system() { return *sys; }

    // ----- Listing 1 APIs -----

    /**
     * Register an accelerator from the template library at a compute
     * level. Template ids follow "<kernel>-<device>" naming
     * ("CNN-VU9P", "KNN-ZCU9", ...).
     */
    AccHandle registerAcc(const std::string &acc_template, Level level);

    /**
     * Create a fixed (sedentary) buffer at a level, initialized from
     * a named source. The source path is an identifier — contents
     * are synthesized, not read from disk.
     */
    BufferHandle createFixedBuffer(const std::string &real_path,
                                   Level dst, std::uint64_t bytes);

    /** Create a communication stream between two levels. */
    StreamHandle createStream(Level src, Level dst, StreamType type,
                              std::uint64_t bytes, std::uint32_t depth);

    // ----- Listing 3 host-side calls -----

    /**
     * Push one item into a CPU-sourced stream; closes the previous
     * loop iteration's job.
     * @retval false once @p total_batches iterations were enqueued.
     */
    bool enqueue(StreamHandle stream);

    /** Total loop iterations the host will run. */
    void setBatchBudget(std::uint32_t total_batches)
    {
        batchBudget = total_batches;
    }

    /** Close the current job explicitly (optional). */
    void endJob();

    /**
     * Simulate until every submitted job completed or failed. Panics
     * with the GAM progress table if the simulation wedges.
     */
    sim::Tick run();

    std::uint32_t jobsSubmitted() const { return submitted; }
    std::uint32_t jobsCompleted() const { return completed; }

    /**
     * Jobs that ended with an explicit failure (fault-recovery budget
     * exhausted). Zero unless fault injection is enabled.
     */
    std::uint32_t jobsFailed() const { return failed; }

  private:
    struct TemplateInfo
    {
        std::string profileId;
        std::vector<ArgRole> argRoles;
        /** Default work density: ops per streamed input byte. */
        double opsPerInputByte = 0.25;
    };

    struct BufferDesc
    {
        std::string source;
        Level level;
        std::uint64_t bytes;
    };

    struct StreamDesc
    {
        Level src, dst;
        StreamType type;
        std::uint64_t bytes;
        std::uint32_t depth;
    };

    struct RegisteredAcc
    {
        TemplateInfo tmpl;
        Level level;
        std::uint32_t gamId = ~0u;
        std::map<std::uint32_t, BufferHandle> bufferArgs;
        std::map<std::uint32_t, StreamHandle> streamArgs;
        std::optional<acc::WorkUnit> workOverride;
        /** Round-robin cursor across instances at this level. */
        std::uint32_t rrCursor = 0;
    };

    /** A pending execute() inside the current job. */
    struct PendingExec
    {
        std::uint32_t accIdx;
        std::uint32_t threadId;
        std::size_t taskIndex; // within the job being built
    };

    const TemplateInfo &lookupTemplate(const std::string &id) const;
    acc::WorkUnit deriveWork(const RegisteredAcc &acc) const;
    void flushJob();

    friend class AccHandle;
    void doSetArgs(std::uint32_t acc, std::uint32_t index,
                   BufferHandle b);
    void doSetArgs(std::uint32_t acc, std::uint32_t index,
                   StreamHandle s);
    void doSetWork(std::uint32_t acc, const acc::WorkUnit &w);
    void doExecute(std::uint32_t acc, std::uint32_t thread_id);

    std::unique_ptr<ReachSystem> sys;
    std::vector<RegisteredAcc> accs;
    std::vector<BufferDesc> buffers;
    std::vector<StreamDesc> streams;

    /** Submit a finished job or park it behind the stream window. */
    void submitOrQueue(gam::JobDesc &&job, std::uint32_t window);
    void drainBacklog();

    gam::JobDesc currentJob;
    std::vector<PendingExec> currentExecs;
    /** Smallest depth among streams the current job touches. */
    std::uint32_t currentWindow = 0;
    bool jobOpen = false;

    /** Jobs waiting for stream credit (depth backpressure). */
    std::deque<std::pair<gam::JobDesc, std::uint32_t>> backlog;

    std::uint32_t batchBudget = 1;
    std::uint32_t enqueued = 0;
    std::uint32_t submitted = 0;
    std::uint32_t completed = 0;
    std::uint32_t failed = 0;
    std::uint32_t inflight = 0;
};

} // namespace reach::core

#endif // REACH_CORE_RUNTIME_HH
