/**
 * @file
 * Functional + timing co-simulation.
 *
 * CbirService is a working retrieval engine at sampled scale: it
 * owns a dataset, builds the IVF index offline, and answers queries
 * exactly (shortlist + exact rerank). CoSimulation pairs such a
 * service with a ReACH deployment so each query batch produces both
 * the *answers* (from the functional layer) and the *latency/energy*
 * the batch would cost on the billion-scale hierarchy (from the
 * timing layer) — the two-resolution methodology DESIGN.md describes,
 * packaged behind one call.
 */

#ifndef REACH_CORE_COSIM_HH
#define REACH_CORE_COSIM_HH

#include <memory>
#include <optional>

#include "cbir/rerank.hh"
#include "cbir/shortlist.hh"
#include "core/cbir_deployment.hh"
#include "parallel/parallel.hh"
#include "workload/dataset.hh"

namespace reach::core
{

/** A functional CBIR engine at sampled scale. */
class CbirService
{
  public:
    struct Config
    {
        workload::DatasetConfig dataset{};
        cbir::KMeansConfig kmeans{};
        std::uint32_t nprobe = 8;
        std::uint32_t topK = 10;
        std::size_t maxCandidates = 4096;
        /**
         * Numeric format of the shortlist centroid scan. Fp16 streams
         * the index's packed half-precision centroids (half the scan
         * bytes, small recall cost); CoSimulation derives the timing
         * model's centroidBytesPerDim from this knob so the byte
         * model can never disagree with the functional path.
         */
        cbir::ShortlistPrecision shortlistPrecision =
            cbir::ShortlistPrecision::Fp32;
        /**
         * Product-quantized rerank: when enabled, the index stores
         * pq.m-byte codes per cluster and query() ranks candidates by
         * ADC, exact-refining the top pq.refine. Validated against
         * the dataset dimensionality at construction (sim::fatal).
         */
        cbir::PqConfig pq{};
        /**
         * With pq.enabled, run the rerank ADC scan cluster-major per
         * query batch (RerankConfig::batchedScan): each probed
         * cluster's code block streams once per batch against all
         * probing queries instead of once per query. Results are
         * bitwise identical to the query-major scan; CoSimulation
         * mirrors the knob into ScaleConfig::batchedRerank so the
         * timing model charges the amortized traffic.
         */
        bool batchedRerank = false;
        /**
         * Host-side thread budget and SIMD backend for the
         * functional kernels (index build, shortlist GEMM, rerank,
         * ground truth). Flows down into every kernel invocation; 1
         * thread reproduces the serial path and the default uses
         * every hardware core — results are identical either way for
         * a fixed backend. parallel.simd (or the REACH_SIMD env var)
         * pins scalar/avx2 for cross-host reproducibility.
         */
        parallel::ParallelConfig parallel{};
    };

    explicit CbirService(const Config &cfg);

    /** Answer a batch of queries (rows = query vectors). */
    cbir::RerankResults query(const cbir::Matrix &queries) const;

    /**
     * Recall@topK over @p num_queries perturbed dataset vectors,
     * against exhaustive ground truth.
     */
    double measureRecall(std::size_t num_queries, double noise,
                         std::uint64_t seed) const;

    const workload::Dataset &dataset() const { return data; }
    const cbir::InvertedFileIndex &index() const { return ivf; }
    const Config &config() const { return cfg; }

  private:
    Config cfg;
    workload::Dataset data;
    cbir::InvertedFileIndex ivf;
};

/** One co-simulated batch: answers plus simulated cost. */
struct CoSimBatch
{
    cbir::RerankResults results;
    /** Simulated submit-to-complete latency of the batch. */
    sim::Tick latency = 0;
    /** Simulated energy consumed by the machine over the batch. */
    double energyJoules = 0;
    /**
     * False when the simulated machine gave up on the batch (fault
     * recovery budget exhausted). The functional answers above are
     * still exact; a real deployment would have to re-issue the
     * batch, so charge `latency` as the time wasted discovering the
     * failure.
     */
    bool timingCompleted = true;
};

class CoSimulation
{
  public:
    /**
     * @param service_cfg  Functional engine (sampled scale).
     * @param timing_scale Billion-scale parameters for the timing
     *                     model; batchSize must match the batches
     *                     passed to processBatch. Its pq block is
     *                     overwritten with service_cfg.pq so the
     *                     timing traffic always matches the
     *                     functional mode.
     * @param mapping      Stage-to-level assignment.
     * @param system_cfg   Machine configuration for the timing layer
     *                     (fault plan, instance counts, ...). Its
     *                     aimUsesHbm flag is overwritten from
     *                     timing_scale.shortlistPlacement so the AIM
     *                     links match the modeled scan medium.
     *
     * timing_scale.centroidBytesPerDim is likewise overwritten from
     * service_cfg.shortlistPrecision, so the scan bytes the timing
     * layer streams always match the functional precision.
     */
    CoSimulation(const CbirService::Config &service_cfg,
                 const cbir::ScaleConfig &timing_scale,
                 Mapping mapping, const SystemConfig &system_cfg = {});

    /**
     * Answer @p queries functionally and charge one batch through
     * the simulated hierarchy.
     */
    CoSimBatch processBatch(const cbir::Matrix &queries);

    const CbirService &service() const { return svc; }
    ReachSystem &system() { return *sys; }
    std::uint32_t batchesProcessed() const { return batches; }

    /**
     * The effective timing scale after the service-config overrides
     * (pq block, centroidBytesPerDim) — what the byte model actually
     * streams, for tests asserting the two layers cannot drift.
     */
    const cbir::ScaleConfig &scale() const { return model.scale(); }

  private:
    CbirService svc;
    cbir::CbirWorkloadModel model;
    std::unique_ptr<ReachSystem> sys;
    std::unique_ptr<CbirDeployment> deployment;
    std::uint32_t batches = 0;
    double lastEnergy = 0;
};

} // namespace reach::core

#endif // REACH_CORE_COSIM_HH
