#include "cbir_deployment.hh"

#include <algorithm>
#include <memory>

#include "sim/logging.hh"

namespace reach::core
{

const char *
mappingName(Mapping m)
{
    switch (m) {
      case Mapping::CpuOnly:
        return "cpu";
      case Mapping::OnChipOnly:
        return "onchip";
      case Mapping::NearMemOnly:
        return "near-mem";
      case Mapping::NearStorOnly:
        return "near-stor";
      case Mapping::Reach:
        return "ReACH";
    }
    return "?";
}

CbirDeployment::CbirDeployment(ReachSystem &system,
                               const cbir::CbirWorkloadModel &wl,
                               Mapping mapping, std::uint32_t instances)
    : sys(system), model(wl), map(mapping), numInstances(instances)
{
    switch (map) {
      case Mapping::CpuOnly:
        numInstances = 1;
        break;
      case Mapping::OnChipOnly:
        if (!sys.hasOnChip())
            sim::fatal("on-chip mapping needs an on-chip accelerator");
        numInstances = 1;
        break;
      case Mapping::NearMemOnly:
        if (numInstances == 0)
            numInstances = sys.numAims();
        if (numInstances > sys.numAims())
            sim::fatal("mapping wants ", numInstances,
                       " AIM modules, system has ", sys.numAims());
        break;
      case Mapping::NearStorOnly:
        if (numInstances == 0)
            numInstances = sys.numNs();
        if (numInstances > sys.numNs())
            sim::fatal("mapping wants ", numInstances,
                       " NS modules, system has ", sys.numNs());
        break;
      case Mapping::Reach:
        if (!sys.hasOnChip())
            sim::fatal("ReACH mapping needs an on-chip accelerator");
        numInstances = 0; // uses all modules at each level
        break;
    }
}

acc::Path
CbirDeployment::ssdGatherPathTo(acc::Level level, std::uint32_t instance)
{
    // The dataset is sharded across all SSDs; gathers stripe over the
    // array, through the host IO switch, staged in host DRAM, then
    // into the consumer's port.
    acc::Path p;
    for (std::uint32_t s = 0; s < sys.config().numSsds; ++s)
        p.from(&sys.ssdAt(s), &sys.ssdHostLink(s));
    p.via(sys.hostIoUplink()).via(sys.hostDramLink());
    if (level == acc::Level::OnChip || level == acc::Level::Cpu)
        p.via(sys.cacheLink());
    else if (level == acc::Level::NearMem)
        p.via(sys.aimLocalLink(instance));
    return p;
}

void
CbirDeployment::addFeatureTasks(gam::JobDesc &job)
{
    const auto &scale = model.scale();

    if (map == Mapping::CpuOnly || map == Mapping::OnChipOnly ||
        map == Mapping::Reach) {
        bool cpu = map == Mapping::CpuOnly;
        gam::TaskDesc t;
        t.label = "feature-extract";
        t.kernelTemplate = cpu ? "CNN-CPU" : "CNN-VU9P";
        t.level = cpu ? acc::Level::Cpu : acc::Level::OnChip;
        t.work = model.featureExtractionBatch();
        t.pinnedAcc = cpu ? sys.hostCoreGamId() : sys.onChipGamId();
        t.inbound.push_back({gam::InboundTransfer::fromHost,
                             model.queryImageBytes() * scale.batchSize});
        job.tasks.push_back(std::move(t));
        return;
    }

    // Near-data variants run one image per task with duplicated
    // parameters (paper §VI-B).
    bool near_mem = map == Mapping::NearMemOnly;
    const auto &ids = near_mem ? sys.aimGamIds() : sys.nsGamIds();
    for (std::uint32_t img = 0; img < scale.batchSize; ++img) {
        gam::TaskDesc t;
        t.label = "feature-extract-" + std::to_string(img);
        t.kernelTemplate = "CNN-ZCU9";
        t.level = near_mem ? acc::Level::NearMem : acc::Level::NearStor;
        t.work = model.featureExtractionSingle();
        t.pinnedAcc = ids.at(img % numInstances);
        t.inbound.push_back(
            {gam::InboundTransfer::fromHost, model.queryImageBytes()});
        job.tasks.push_back(std::move(t));
    }
}

std::vector<std::size_t>
CbirDeployment::addShortlistTasks(gam::JobDesc &job,
                                  const std::vector<std::size_t> &fe)
{
    const auto &scale = model.scale();
    std::vector<std::size_t> out;

    std::uint64_t feature_batch_bytes =
        model.featureVectorBytes() * scale.batchSize;

    auto feature_inbound = [&](gam::TaskDesc &t) {
        // The feature batch is broadcast to every short-list
        // instance; with per-image FE tasks each producer sends its
        // own vector.
        for (std::size_t src : fe) {
            t.inbound.push_back(
                {src, feature_batch_bytes / fe.size()});
        }
        t.deps.assign(fe.begin(), fe.end());
    };

    if (map == Mapping::CpuOnly || map == Mapping::OnChipOnly) {
        bool cpu = map == Mapping::CpuOnly;
        gam::TaskDesc t;
        t.label = "shortlist";
        t.kernelTemplate = cpu ? "GeMM-CPU" : "GeMM-VU9P";
        t.level = cpu ? acc::Level::Cpu : acc::Level::OnChip;
        t.work = model.shortlistBatch(1);
        t.pinnedAcc = cpu ? sys.hostCoreGamId() : sys.onChipGamId();
        feature_inbound(t);
        out.push_back(job.tasks.size());
        job.tasks.push_back(std::move(t));
        return out;
    }

    bool near_mem =
        map == Mapping::NearMemOnly || map == Mapping::Reach;
    std::uint32_t n = near_mem
                          ? (map == Mapping::Reach ? sys.numAims()
                                                   : numInstances)
                          : numInstances;
    const auto &ids = near_mem ? sys.aimGamIds() : sys.nsGamIds();

    for (std::uint32_t i = 0; i < n; ++i) {
        gam::TaskDesc t;
        t.label = "shortlist-" + std::to_string(i);
        t.kernelTemplate = "GeMM-ZCU9";
        t.level = near_mem ? acc::Level::NearMem : acc::Level::NearStor;
        t.work = model.shortlistBatch(n);
        t.pinnedAcc = ids.at(i);
        feature_inbound(t);
        out.push_back(job.tasks.size());
        job.tasks.push_back(std::move(t));
    }

    // Near-memory partitions hold per-partition top-nprobe lists;
    // one module merges them, with the partials exchanged over the
    // AIMbus (paper Fig. 3: inter-DIMM communication). Downstream
    // consumers then depend on the merged list only.
    if (near_mem && n > 1) {
        gam::TaskDesc merge;
        merge.label = "shortlist-merge";
        merge.kernelTemplate = "GeMM-ZCU9";
        merge.level = acc::Level::NearMem;
        merge.pinnedAcc = ids.at(0);
        // Merging n sorted nprobe-lists per query: trivial compute.
        merge.work.ops = static_cast<double>(scale.batchSize) *
                         scale.nprobe * n;
        std::uint64_t partial_bytes =
            (std::uint64_t(scale.batchSize) * scale.nprobe * 8 +
             std::uint64_t(scale.batchSize) * scale.rerankCandidates *
                 4) /
            n;
        for (std::size_t src : out) {
            merge.deps.push_back(src);
            merge.inbound.push_back({src, partial_bytes});
        }
        std::size_t merge_index = job.tasks.size();
        job.tasks.push_back(std::move(merge));
        out.assign(1, merge_index);
    }
    return out;
}

std::vector<std::size_t>
CbirDeployment::addRerankTasks(gam::JobDesc &job,
                               const std::vector<std::size_t> &sl)
{
    const auto &scale = model.scale();
    std::vector<std::size_t> out;

    std::uint64_t candidate_id_bytes = std::uint64_t(scale.batchSize) *
                                       scale.rerankCandidates * 4;

    auto candidate_inbound = [&](gam::TaskDesc &t,
                                 std::uint32_t partitions) {
        for (std::size_t src : sl) {
            t.inbound.push_back(
                {src, candidate_id_bytes / partitions / sl.size()});
        }
        t.deps.assign(sl.begin(), sl.end());
    };

    if (map == Mapping::CpuOnly || map == Mapping::OnChipOnly) {
        bool cpu = map == Mapping::CpuOnly;
        gam::TaskDesc t;
        t.label = "rerank";
        t.kernelTemplate = cpu ? "KNN-CPU" : "KNN-VU9P";
        t.level = cpu ? acc::Level::Cpu : acc::Level::OnChip;
        t.work = model.rerankBatch(1);
        t.work.inputOverride = ssdGatherPathTo(t.level, 0);
        t.work.inputThrottleBw = cpu ? sys.config().cpuGatherBw
                                     : sys.config().onChipGatherBw;
        t.pinnedAcc = cpu ? sys.hostCoreGamId() : sys.onChipGamId();
        candidate_inbound(t, 1);
        out.push_back(job.tasks.size());
        job.tasks.push_back(std::move(t));
        return out;
    }

    if (map == Mapping::NearMemOnly) {
        for (std::uint32_t i = 0; i < numInstances; ++i) {
            gam::TaskDesc t;
            t.label = "rerank-" + std::to_string(i);
            t.kernelTemplate = "KNN-ZCU9";
            t.level = acc::Level::NearMem;
            t.work = model.rerankBatch(numInstances);
            t.work.inputOverride =
                ssdGatherPathTo(acc::Level::NearMem, i);
            t.work.inputThrottleBw = sys.config().nmGatherBw;
            t.pinnedAcc = sys.aimGamIds().at(i);
            candidate_inbound(t, numInstances);
            out.push_back(job.tasks.size());
            job.tasks.push_back(std::move(t));
        }
        return out;
    }

    // Near-storage rerank (NearStorOnly and Reach): each module
    // gathers from its own SSD at full internal bandwidth.
    std::uint32_t n = map == Mapping::Reach ? sys.numNs() : numInstances;
    for (std::uint32_t i = 0; i < n; ++i) {
        gam::TaskDesc t;
        t.label = "rerank-" + std::to_string(i);
        t.kernelTemplate = "KNN-ZCU9";
        t.level = acc::Level::NearStor;
        t.work = model.rerankBatch(n);
        t.work.inputThrottleBw = sys.config().nsGatherBw;
        t.pinnedAcc = sys.nsGamIds().at(i);
        candidate_inbound(t, n);
        out.push_back(job.tasks.size());
        job.tasks.push_back(std::move(t));
    }
    return out;
}

void
CbirDeployment::addReverseLookupTasks(
    gam::JobDesc &job, const std::vector<std::size_t> &rr)
{
    // Extension stage (the paper describes reverse lookup but
    // excludes it): the image store lives on the SSD array, so the
    // fetch always runs near storage regardless of the mapping; the
    // images stream back to the host over the IO interface.
    std::uint32_t n = sys.numNs();
    for (std::uint32_t i = 0; i < n; ++i) {
        gam::TaskDesc t;
        t.label = "reverse-lookup-" + std::to_string(i);
        t.kernelTemplate = "KNN-ZCU9"; // streaming fetch engine
        t.level = acc::Level::NearStor;
        t.work = model.reverseLookupBatch(n);
        t.pinnedAcc = sys.nsGamIds().at(i);
        std::uint64_t id_bytes =
            std::uint64_t(model.scale().batchSize) *
            model.scale().topK * 8 / n;
        for (std::size_t src : rr) {
            t.deps.push_back(src);
            t.inbound.push_back({src, id_bytes / rr.size()});
        }
        job.tasks.push_back(std::move(t));
    }
}

gam::JobDesc
CbirDeployment::makeBatchJob(std::uint32_t batch_index,
                             std::function<void(sim::Tick)> on_done,
                             std::function<void(sim::Tick)> on_failed)
{
    gam::JobDesc job;
    job.threadId = 0;
    job.label = std::string(mappingName(map)) + "-batch" +
                std::to_string(batch_index);
    job.onComplete = std::move(on_done);
    job.onFailed = std::move(on_failed);

    addFeatureTasks(job);
    std::vector<std::size_t> fe(job.tasks.size());
    for (std::size_t i = 0; i < fe.size(); ++i)
        fe[i] = i;

    auto sl = addShortlistTasks(job, fe);
    auto rr = addRerankTasks(job, sl);
    if (model.scale().includeReverseLookup)
        addReverseLookupTasks(job, rr);
    return job;
}

RunResult
CbirDeployment::run(std::uint32_t batches)
{
    if (batches == 0)
        return {};

    auto &sim = sys.simulator();
    sim::Tick t0 = sim.now();

    struct RunState
    {
        std::uint32_t submitted = 0;
        std::uint32_t completed = 0;
        std::uint32_t failed = 0;
        /**
         * 128-bit sum: an open-loop-length run (billions of batches
         * at millisecond latencies) would overflow a 64-bit tick
         * accumulator long before the tick counter itself wraps.
         */
        unsigned __int128 latencySum = 0;
        sim::Tick latencyMax = 0;
        sim::Tick lastDone = 0;
    };
    auto st = std::make_shared<RunState>();

    // Closed-loop window: keeps the pipeline full without unbounded
    // queueing (the runtime's stream depth).
    constexpr std::uint32_t window = 4;

    // Recursive submitter. The function captures itself weakly —
    // outstanding completion callbacks hold the strong references,
    // so the whole chain is freed once the run drains.
    auto submit = std::make_shared<std::function<void()>>();
    std::weak_ptr<std::function<void()>> weak_submit = submit;
    *submit = [this, st, batches, weak_submit, &sim]() {
        if (st->submitted >= batches)
            return;
        std::uint32_t idx = st->submitted++;
        sim::Tick submitted_at = sim.now();
        gam::JobDesc job = makeBatchJob(
            idx,
            [st, submitted_at,
             submit = weak_submit.lock()](sim::Tick at) {
                sim::Tick lat = at - submitted_at;
                st->latencySum += lat;
                st->latencyMax = std::max(st->latencyMax, lat);
                st->lastDone = at;
                ++st->completed;
                (*submit)();
            },
            // A failed batch frees its window slot so the run still
            // drains; the caller sees it in failedBatches.
            [st, submit = weak_submit.lock()](sim::Tick at) {
                st->lastDone = std::max(st->lastDone, at);
                ++st->failed;
                (*submit)();
            });
        sys.gam().submitJob(std::move(job));
    };

    for (std::uint32_t i = 0; i < window && i < batches; ++i)
        (*submit)();

    sim.runUntil([st, batches] {
        return st->completed + st->failed >= batches;
    });

    if (st->completed + st->failed < batches)
        sys.gam().reportWedge("CbirDeployment::run");

    RunResult res;
    res.batches = batches;
    res.completedBatches = st->completed;
    res.failedBatches = st->failed;
    res.makespan = st->lastDone - t0;
    res.meanLatency =
        st->completed > 0
            ? static_cast<sim::Tick>(st->latencySum / st->completed)
            : 0;
    res.maxLatency = st->latencyMax;
    return res;
}

} // namespace reach::core
