#include "runtime.hh"

#include <algorithm>
#include <mutex>

#include "cbir/vgg.hh"
#include "sim/logging.hh"

namespace reach::core
{

void
AccHandle::setArgs(std::uint32_t index, BufferHandle buffer)
{
    if (!rt)
        sim::fatal("setArgs on an invalid accelerator handle");
    rt->doSetArgs(id, index, buffer);
}

void
AccHandle::setArgs(std::uint32_t index, StreamHandle stream)
{
    if (!rt)
        sim::fatal("setArgs on an invalid accelerator handle");
    rt->doSetArgs(id, index, stream);
}

void
AccHandle::setWork(const acc::WorkUnit &work)
{
    if (!rt)
        sim::fatal("setWork on an invalid accelerator handle");
    rt->doSetWork(id, work);
}

void
AccHandle::execute(std::uint32_t thread_id)
{
    if (!rt)
        sim::fatal("execute on an invalid accelerator handle");
    rt->doExecute(id, thread_id);
}

ReachRuntime::ReachRuntime(const SystemConfig &cfg)
    : sys(std::make_unique<ReachSystem>(cfg))
{
}

const ReachRuntime::TemplateInfo &
ReachRuntime::lookupTemplate(const std::string &id) const
{
    // Validate the template exists in the kernel catalog, then attach
    // its dataflow roles by kernel family.
    const acc::KernelProfile &prof = acc::findKernel(id);

    // The memoized table is shared by every runtime in the process;
    // concurrent simulators (parallel sweep points) may look up
    // templates at the same time, so guard it.
    static std::mutex table_mu;
    static std::map<std::string, TemplateInfo> table;
    std::lock_guard<std::mutex> lock(table_mu);
    auto it = table.find(id);
    if (it != table.end())
        return it->second;

    TemplateInfo info;
    info.profileId = id;
    if (prof.kernelType == "CNN") {
        info.argRoles = {ArgRole::StreamIn, ArgRole::Params,
                         ArgRole::StreamOut};
        // Pruned VGG16 MACs per input image byte.
        info.opsPerInputByte =
            cbir::vgg16TotalMacs() * 0.08 / (224.0 * 224.0 * 3.0);
    } else if (prof.kernelType == "GeMM") {
        info.argRoles = {ArgRole::StreamIn, ArgRole::Database,
                         ArgRole::StreamOut};
        info.opsPerInputByte = 0.25; // one lane word per float
    } else if (prof.kernelType == "KNN") {
        info.argRoles = {ArgRole::StreamIn, ArgRole::Database,
                         ArgRole::StreamOut};
        info.opsPerInputByte = 0.25;
    } else {
        info.argRoles = {ArgRole::StreamIn, ArgRole::StreamOut};
    }
    return table.emplace(id, std::move(info)).first->second;
}

AccHandle
ReachRuntime::registerAcc(const std::string &acc_template, Level level)
{
    RegisteredAcc reg;
    reg.tmpl = lookupTemplate(acc_template);
    reg.level = level;

    // Each registration claims the next physical instance at that
    // level (Listing 2 registers knn0 and knn1 separately).
    std::uint32_t claimed = 0;
    for (const auto &a : accs) {
        if (a.level == level)
            ++claimed;
    }

    switch (level) {
      case Level::OnChip:
        if (!sys->hasOnChip() || claimed >= 1)
            sim::fatal("no free on-chip accelerator to register '",
                       acc_template, "'");
        reg.gamId = sys->onChipGamId();
        break;
      case Level::NearMem:
        if (claimed >= sys->numAims())
            sim::fatal("all ", sys->numAims(),
                       " AIM modules already registered");
        reg.gamId = sys->aimGamIds().at(claimed);
        break;
      case Level::NearStor:
        if (claimed >= sys->numNs())
            sim::fatal("all ", sys->numNs(),
                       " near-storage modules already registered");
        reg.gamId = sys->nsGamIds().at(claimed);
        break;
      case Level::Cpu:
        // Software kernels time-share the single host core.
        if (claimed >= 1)
            sim::fatal("the host core is already registered");
        reg.gamId = sys->hostCoreGamId();
        break;
    }

    accs.push_back(std::move(reg));
    return AccHandle(this, static_cast<std::uint32_t>(accs.size() - 1));
}

BufferHandle
ReachRuntime::createFixedBuffer(const std::string &real_path, Level dst,
                                std::uint64_t bytes)
{
    if (bytes == 0)
        sim::fatal("fixed buffer '", real_path, "' has zero size");
    // Register the sedentary region in the GAM's buffer table
    // (Fig. 5c); over-subscription of a level is a config error.
    sys->gam().buffers().allocate(dst, bytes, real_path);
    buffers.push_back(BufferDesc{real_path, dst, bytes});
    return BufferHandle{
        static_cast<std::uint32_t>(buffers.size() - 1)};
}

StreamHandle
ReachRuntime::createStream(Level src, Level dst, StreamType type,
                           std::uint64_t bytes, std::uint32_t depth)
{
    if (src == dst)
        sim::fatal("stream endpoints must be different levels");
    if (depth == 0)
        sim::fatal("stream depth must be at least 1");

    // A stream is a pair of queues allocated in the memory space of
    // both endpoints (paper §III-B); broadcast duplicates the
    // destination queue per instance, collect duplicates the source
    // queue per instance.
    auto instances_at = [this](Level l) -> std::uint64_t {
        switch (l) {
          case Level::NearMem:
            return std::max<std::uint64_t>(sys->numAims(), 1);
          case Level::NearStor:
            return std::max<std::uint64_t>(sys->numNs(), 1);
          default:
            return 1;
        }
    };

    std::uint64_t queue_bytes = bytes * depth;
    std::string name =
        "stream" + std::to_string(streams.size());
    auto &table = sys->gam().buffers();

    std::uint64_t src_copies =
        type == StreamType::Collect ? instances_at(src) : 1;
    std::uint64_t dst_copies =
        type == StreamType::BroadCast ? instances_at(dst) : 1;
    table.allocate(src, queue_bytes * src_copies, name + ".srcq");
    table.allocate(dst, queue_bytes * dst_copies, name + ".dstq");

    streams.push_back(StreamDesc{src, dst, type, bytes, depth});
    return StreamHandle{
        static_cast<std::uint32_t>(streams.size() - 1)};
}

void
ReachRuntime::doSetArgs(std::uint32_t acc, std::uint32_t index,
                        BufferHandle b)
{
    if (!b.valid() || b.id >= buffers.size())
        sim::fatal("setArgs: invalid buffer handle");
    accs.at(acc).bufferArgs[index] = b;
}

void
ReachRuntime::doSetArgs(std::uint32_t acc, std::uint32_t index,
                        StreamHandle s)
{
    if (!s.valid() || s.id >= streams.size())
        sim::fatal("setArgs: invalid stream handle");
    accs.at(acc).streamArgs[index] = s;
}

void
ReachRuntime::doSetWork(std::uint32_t acc, const acc::WorkUnit &w)
{
    accs.at(acc).workOverride = w;
}

acc::WorkUnit
ReachRuntime::deriveWork(const RegisteredAcc &acc) const
{
    if (acc.workOverride)
        return *acc.workOverride;

    acc::WorkUnit w;
    bool all_inputs_from_cpu = true;

    for (const auto &[idx, sh] : acc.streamArgs) {
        if (idx >= acc.tmpl.argRoles.size())
            continue;
        const StreamDesc &s = streams[sh.id];
        switch (acc.tmpl.argRoles[idx]) {
          case ArgRole::StreamIn:
            w.bytesIn += s.bytes;
            if (s.src != Level::Cpu)
                all_inputs_from_cpu = false;
            break;
          case ArgRole::StreamOut:
            w.bytesOut += s.bytes;
            break;
          default:
            break;
        }
    }
    for (const auto &[idx, bh] : acc.bufferArgs) {
        if (idx >= acc.tmpl.argRoles.size())
            continue;
        const BufferDesc &b = buffers[bh.id];
        switch (acc.tmpl.argRoles[idx]) {
          case ArgRole::Params:
            w.paramBytes += b.bytes;
            w.paramKey = b.source;
            break;
          case ArgRole::Database:
            // Scanned once per execute (the GeMM/KNN semantics).
            w.bytesIn += b.bytes;
            all_inputs_from_cpu = false;
            break;
          default:
            break;
        }
    }

    w.ops = acc.tmpl.opsPerInputByte * static_cast<double>(w.bytesIn);
    // A batched on-chip kernel whose entire input arrived from the
    // CPU keeps it SRAM/cache-resident.
    w.inputResident =
        acc.level == Level::OnChip && all_inputs_from_cpu;
    return w;
}

void
ReachRuntime::doExecute(std::uint32_t acc_idx, std::uint32_t thread_id)
{
    if (!jobOpen) {
        currentJob = gam::JobDesc{};
        currentJob.threadId = thread_id;
        currentJob.label = "job" + std::to_string(submitted);
        currentExecs.clear();
        currentWindow = 0;
        jobOpen = true;
    }

    // Stream depth limits how many loop iterations may be in flight
    // at once; the job's window is its tightest stream.
    for (const auto &[idx, sh] : accs.at(acc_idx).streamArgs) {
        (void)idx;
        std::uint32_t d = streams[sh.id].depth;
        currentWindow = currentWindow == 0
                            ? d
                            : std::min(currentWindow, d);
    }

    const RegisteredAcc &acc = accs.at(acc_idx);

    gam::TaskDesc t;
    t.label = acc.tmpl.profileId + "#" +
              std::to_string(currentJob.tasks.size());
    t.kernelTemplate = acc.tmpl.profileId;
    t.level = acc.level;
    t.work = deriveWork(acc);
    t.pinnedAcc = acc.gamId;

    // Dependencies: any StreamIn of this task produced by an earlier
    // execute() in the same job becomes a dep + inbound transfer; a
    // CPU-sourced stream becomes a host inbound transfer.
    for (const auto &[idx, sh] : acc.streamArgs) {
        if (idx >= acc.tmpl.argRoles.size() ||
            acc.tmpl.argRoles[idx] != ArgRole::StreamIn) {
            continue;
        }
        const StreamDesc &s = streams[sh.id];
        if (s.src == Level::Cpu) {
            t.inbound.push_back(
                {gam::InboundTransfer::fromHost, s.bytes});
            continue;
        }

        // Find producers of this stream among this job's tasks.
        std::vector<std::size_t> producers;
        for (const auto &pe : currentExecs) {
            const RegisteredAcc &prod = accs[pe.accIdx];
            for (const auto &[pidx, psh] : prod.streamArgs) {
                if (psh.id == sh.id &&
                    pidx < prod.tmpl.argRoles.size() &&
                    prod.tmpl.argRoles[pidx] == ArgRole::StreamOut) {
                    producers.push_back(pe.taskIndex);
                }
            }
        }
        if (producers.empty()) {
            sim::fatal("stream consumed by '", t.label,
                       "' has no producer in this job; order the "
                       "execute() calls producer-first");
        }
        std::uint64_t per_producer =
            s.type == StreamType::Collect
                ? s.bytes / producers.size()
                : s.bytes;
        for (std::size_t p : producers) {
            t.deps.push_back(p);
            t.inbound.push_back({p, per_producer});
        }
    }

    currentExecs.push_back(
        PendingExec{acc_idx, thread_id, currentJob.tasks.size()});
    currentJob.tasks.push_back(std::move(t));
}

bool
ReachRuntime::enqueue(StreamHandle stream)
{
    if (!stream.valid() || stream.id >= streams.size())
        sim::fatal("enqueue: invalid stream handle");
    if (streams[stream.id].src != Level::Cpu)
        sim::fatal("enqueue: only CPU-sourced streams can be fed by "
                   "the host");

    flushJob();
    if (enqueued >= batchBudget)
        return false;
    ++enqueued;
    return true;
}

void
ReachRuntime::endJob()
{
    flushJob();
}

void
ReachRuntime::flushJob()
{
    if (!jobOpen || currentJob.tasks.empty()) {
        jobOpen = false;
        return;
    }

    // Listing 3 ends each iteration with Result.collect() followed by
    // process(Result.dequeue()): any CPU-bound stream produced in
    // this job gets a host post-processing task consuming it.
    for (std::uint32_t sid = 0; sid < streams.size(); ++sid) {
        const StreamDesc &s = streams[sid];
        if (s.dst != Level::Cpu)
            continue;

        std::vector<std::size_t> producers;
        for (const auto &pe : currentExecs) {
            const RegisteredAcc &prod = accs[pe.accIdx];
            for (const auto &[pidx, psh] : prod.streamArgs) {
                if (psh.id == sid &&
                    pidx < prod.tmpl.argRoles.size() &&
                    prod.tmpl.argRoles[pidx] == ArgRole::StreamOut) {
                    producers.push_back(pe.taskIndex);
                }
            }
        }
        if (producers.empty())
            continue;

        gam::TaskDesc t;
        t.label = "host-process";
        t.kernelTemplate = "PROC-CPU";
        t.level = Level::Cpu;
        t.pinnedAcc = sys->hostCoreGamId();
        t.work.ops = 2.0 * static_cast<double>(s.bytes);
        t.work.bytesIn = s.bytes;
        t.work.inputResident = true;
        std::uint64_t per = s.type == StreamType::Collect
                                ? s.bytes / producers.size()
                                : s.bytes;
        for (std::size_t p : producers) {
            t.deps.push_back(p);
            t.inbound.push_back({p, per});
        }
        currentJob.tasks.push_back(std::move(t));
    }
    currentJob.onComplete = [this](sim::Tick) {
        ++completed;
        --inflight;
        drainBacklog();
    };
    // A failed job still releases its stream-window credit; later
    // iterations keep flowing and the host loop terminates.
    currentJob.onFailed = [this](sim::Tick) {
        ++failed;
        --inflight;
        drainBacklog();
    };
    std::uint32_t window = currentWindow == 0 ? 4 : currentWindow;
    submitOrQueue(std::move(currentJob), window);
    jobOpen = false;
}

void
ReachRuntime::submitOrQueue(gam::JobDesc &&job, std::uint32_t window)
{
    if (inflight < window) {
        ++inflight;
        ++submitted;
        sys->gam().submitJob(std::move(job));
    } else {
        backlog.emplace_back(std::move(job), window);
    }
}

void
ReachRuntime::drainBacklog()
{
    while (!backlog.empty() && inflight < backlog.front().second) {
        auto [job, window] = std::move(backlog.front());
        backlog.pop_front();
        ++inflight;
        ++submitted;
        sys->gam().submitJob(std::move(job));
    }
}

sim::Tick
ReachRuntime::run()
{
    flushJob();
    drainBacklog();
    sim::Tick t = sys->simulator().runUntil([this] {
        return sys->gam().idle() && backlog.empty();
    });
    if (!sys->gam().idle() || !backlog.empty())
        sys->gam().reportWedge("ReachRuntime::run");
    return t;
}

} // namespace reach::core
