#include "cosim.hh"

#include "sim/logging.hh"

namespace reach::core
{

namespace
{

/** Index-build k-means inherits the service-level thread budget. */
cbir::KMeansConfig
kmeansConfigOf(const CbirService::Config &cfg)
{
    cbir::KMeansConfig km = cfg.kmeans;
    km.parallel = cfg.parallel;
    return km;
}

} // namespace

CbirService::CbirService(const Config &config)
    : cfg(config),
      data(config.dataset),
      ivf(data.vectors(), kmeansConfigOf(config))
{
}

cbir::RerankResults
CbirService::query(const cbir::Matrix &queries) const
{
    auto lists = cbir::shortlistRetrieve(queries, ivf, cfg.nprobe,
                                         cfg.parallel);
    cbir::RerankConfig rc;
    rc.k = cfg.topK;
    rc.maxCandidates = cfg.maxCandidates;
    rc.parallel = cfg.parallel;
    return cbir::rerank(queries, data.vectors(), ivf, lists, rc);
}

double
CbirService::measureRecall(std::size_t num_queries, double noise,
                           std::uint64_t seed) const
{
    cbir::Matrix queries = data.makeQueries(num_queries, noise, seed);
    auto got = query(queries);
    auto truth = cbir::bruteForce(queries, data.vectors(), cfg.topK,
                                  cfg.parallel);
    return cbir::recallAtK(got, truth, cfg.topK);
}

CoSimulation::CoSimulation(const CbirService::Config &service_cfg,
                           const cbir::ScaleConfig &timing_scale,
                           Mapping mapping)
    : svc(service_cfg), model(timing_scale)
{
    sys = std::make_unique<ReachSystem>(SystemConfig{});
    deployment = std::make_unique<CbirDeployment>(*sys, model,
                                                  mapping);
}

CoSimBatch
CoSimulation::processBatch(const cbir::Matrix &queries)
{
    if (queries.rows() != model.scale().batchSize) {
        sim::fatal("co-sim batch has ", queries.rows(),
                   " queries but the timing scale expects ",
                   model.scale().batchSize);
    }

    CoSimBatch out;
    out.results = svc.query(queries);

    // Charge one batch through the simulated machine.
    auto &sim = sys->simulator();
    sim::Tick submitted = sim.now();
    sim::Tick completed = 0;
    sys->gam().submitJob(deployment->makeBatchJob(
        batches, [&completed](sim::Tick t) { completed = t; }));
    sim.runUntil([&completed] { return completed != 0; });
    if (completed == 0)
        sim::panic("co-sim batch never completed");

    out.latency = completed - submitted;

    double total = sys->measureEnergy().total();
    out.energyJoules = total - lastEnergy;
    lastEnergy = total;

    ++batches;
    return out;
}

} // namespace reach::core
