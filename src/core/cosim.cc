#include "cosim.hh"

#include "sim/logging.hh"

namespace reach::core
{

namespace
{

/** Index-build k-means inherits the service-level thread budget. */
cbir::KMeansConfig
kmeansConfigOf(const CbirService::Config &cfg)
{
    cbir::KMeansConfig km = cfg.kmeans;
    km.parallel = cfg.parallel;
    return km;
}

/** Fail fast on a bad PQ block, before the dataset/index builds. */
CbirService::Config
validatedServiceConfig(CbirService::Config cfg)
{
    if (cfg.pq.enabled)
        cbir::validatePqConfig(cfg.pq, cfg.dataset.dim);
    return cfg;
}

/**
 * The timing layer's traffic modes must match the functional ones:
 * the PQ block and the shortlist scan width both come from the
 * service config, never from the caller-supplied scale.
 */
cbir::ScaleConfig
scaleWithServiceModes(cbir::ScaleConfig scale,
                      const CbirService::Config &svc)
{
    scale.pq = svc.pq;
    scale.batchedRerank = svc.batchedRerank;
    scale.centroidBytesPerDim =
        cbir::centroidBytesPerDim(svc.shortlistPrecision);
    return scale;
}

/**
 * Derive the machine's AIM medium from the workload's shortlist
 * placement knob so the timing links always match the modeled scan.
 */
SystemConfig
systemWithScanPlacement(SystemConfig sys, const cbir::ScaleConfig &scale)
{
    sys.aimUsesHbm =
        scale.shortlistPlacement == cbir::ScanPlacement::Hbm;
    return sys;
}

} // namespace

CbirService::CbirService(const Config &config)
    : cfg(validatedServiceConfig(config)),
      data(config.dataset),
      ivf(data.vectors(), kmeansConfigOf(config))
{
    if (cfg.pq.enabled)
        ivf.buildPq(data.vectors(), cfg.pq, cfg.parallel);
}

cbir::RerankResults
CbirService::query(const cbir::Matrix &queries) const
{
    auto lists = cbir::shortlistRetrieve(queries, ivf, cfg.nprobe,
                                         cfg.parallel,
                                         cfg.shortlistPrecision);
    cbir::RerankConfig rc;
    rc.k = cfg.topK;
    rc.maxCandidates = cfg.maxCandidates;
    rc.parallel = cfg.parallel;
    rc.usePq = cfg.pq.enabled;
    rc.pqRefine = cfg.pq.refine;
    rc.batchedScan = cfg.batchedRerank;
    return cbir::rerank(queries, data.vectors(), ivf, lists, rc);
}

double
CbirService::measureRecall(std::size_t num_queries, double noise,
                           std::uint64_t seed) const
{
    cbir::Matrix queries = data.makeQueries(num_queries, noise, seed);
    auto got = query(queries);
    auto truth = cbir::bruteForce(queries, data.vectors(), cfg.topK,
                                  cfg.parallel);
    return cbir::recallAtK(got, truth, cfg.topK);
}

CoSimulation::CoSimulation(const CbirService::Config &service_cfg,
                           const cbir::ScaleConfig &timing_scale,
                           Mapping mapping,
                           const SystemConfig &system_cfg)
    : svc(service_cfg),
      model(scaleWithServiceModes(timing_scale, service_cfg))
{
    sys = std::make_unique<ReachSystem>(
        systemWithScanPlacement(system_cfg, model.scale()));
    deployment = std::make_unique<CbirDeployment>(*sys, model,
                                                  mapping);
}

CoSimBatch
CoSimulation::processBatch(const cbir::Matrix &queries)
{
    if (queries.rows() != model.scale().batchSize) {
        sim::fatal("co-sim batch has ", queries.rows(),
                   " queries but the timing scale expects ",
                   model.scale().batchSize);
    }

    CoSimBatch out;
    out.results = svc.query(queries);

    // Charge one batch through the simulated machine.
    auto &sim = sys->simulator();
    sim::Tick submitted = sim.now();
    sim::Tick done = 0;
    bool failed = false;
    sys->gam().submitJob(deployment->makeBatchJob(
        batches, [&done](sim::Tick t) { done = t; },
        [&done, &failed](sim::Tick t) {
            done = t;
            failed = true;
        }));
    sim.runUntil([&done] { return done != 0; });
    if (done == 0)
        sys->gam().reportWedge("CoSimulation::processBatch");

    out.latency = done - submitted;
    out.timingCompleted = !failed;

    double total = sys->measureEnergy().total();
    out.energyJoules = total - lastEnergy;
    lastEnergy = total;

    ++batches;
    return out;
}

} // namespace reach::core
