/**
 * @file
 * The assembled ReACH machine (paper Fig. 1/2): simulator, DDR4
 * memory system with host and AIM regions, shared LLC + accelerator
 * TLB, SSD array, interconnect fabric, the three accelerator levels,
 * the GAM wired with inter-level transfer paths, and the energy
 * model.
 */

#ifndef REACH_CORE_REACH_SYSTEM_HH
#define REACH_CORE_REACH_SYSTEM_HH

#include <memory>
#include <vector>

#include "acc/accelerator.hh"
#include "acc/aim_module.hh"
#include "acc/ns_module.hh"
#include "core/system_config.hh"
#include "energy/energy_model.hh"
#include "fault/fault.hh"
#include "gam/gam.hh"
#include "mem/cache.hh"
#include "mem/memory_system.hh"
#include "mem/tlb.hh"
#include "noc/link.hh"
#include "sim/simulator.hh"
#include "storage/ssd.hh"

namespace reach::core
{

class ReachSystem
{
  public:
    explicit ReachSystem(const SystemConfig &cfg = {});

    const SystemConfig &config() const { return cfg; }

    sim::Simulator &simulator() { return sim; }
    gam::Gam &gam() { return *gamUnit; }
    mem::MemorySystem &memory() { return *memSys; }
    mem::Cache &llc() { return *cache; }

    /** On-chip accelerator; fatal() if the config disabled it. */
    acc::Accelerator &onChip();
    bool hasOnChip() const { return onChipAcc != nullptr; }

    /** The host core as a software compute target (CPU baselines). */
    acc::Accelerator &hostCore() { return *cpuCore; }
    std::uint32_t hostCoreGamId() const { return cpuId; }

    std::uint32_t numAims() const
    {
        return static_cast<std::uint32_t>(aims.size());
    }
    acc::AimModule &aim(std::uint32_t i) { return *aims.at(i); }

    std::uint32_t numNs() const
    {
        return static_cast<std::uint32_t>(nss.size());
    }
    acc::NsModule &ns(std::uint32_t i) { return *nss.at(i); }

    storage::Ssd &ssdAt(std::uint32_t i) { return *ssds.at(i); }

    /** GAM accelerator ids (progress-table rows). */
    std::uint32_t onChipGamId() const { return onChipId; }
    const std::vector<std::uint32_t> &aimGamIds() const
    {
        return aimIds;
    }
    const std::vector<std::uint32_t> &nsGamIds() const { return nsIds; }

    /** The calibrated host-DRAM streaming bandwidth in use (B/s). */
    double hostDramBandwidth() const { return hostDramBw; }

    /**
     * Run the simulation until the GAM is idle (every job completed
     * or explicitly failed). Panics with the dumped progress table if
     * the event queue drains with jobs still pending.
     */
    sim::Tick runUntilIdle();

    /** The fault injector, or null when the plan injects nothing. */
    fault::FaultInjector *faultInjector() { return faultInj.get(); }

    /** Energy per component over the simulated interval so far. */
    energy::EnergyBreakdown measureEnergy();

    /** Direct access for custom instrumentation. */
    energy::EnergyModel &energyModel() { return energy; }

    noc::Link &hostDramLink() { return *hostDram; }
    noc::Link &cacheLink() { return *cachePort; }
    noc::Link &hostIoUplink() { return *hostIo; }
    noc::Link &aimBusLink() { return *aimBus; }
    noc::Link &aimLocalLink(std::uint32_t i)
    {
        return *aimLocal.at(i);
    }
    noc::Link &nsLocalLink(std::uint32_t i) { return *nsLocal.at(i); }
    noc::Link &ssdHostLink(std::uint32_t i)
    {
        return *ssdHost.at(i);
    }

    /** The GAM transfer-path builder, exposed for tests. */
    acc::Path pathBetween(const acc::Accelerator *from,
                          const acc::Accelerator *to);

  private:
    void buildMemory();
    void buildStorage();
    void buildAccelerators();
    void wireGam();
    void wireFaults();
    void registerEnergy();

    SystemConfig cfg;
    sim::Simulator sim;

    std::unique_ptr<fault::FaultInjector> faultInj;

    std::unique_ptr<mem::MemorySystem> memSys;
    std::unique_ptr<mem::Cache> cache;
    std::unique_ptr<mem::Tlb> tlb;

    std::vector<std::unique_ptr<storage::Ssd>> ssds;

    // Interconnect fabric.
    double hostDramBw = 0;
    std::unique_ptr<noc::Link> hostDram;
    std::unique_ptr<noc::Link> cachePort;
    std::unique_ptr<noc::Link> aimBus;
    std::unique_ptr<noc::Link> hostIo;
    std::vector<std::unique_ptr<noc::Link>> aimLocal;
    std::vector<std::unique_ptr<noc::Link>> nsLocal;
    std::vector<std::unique_ptr<noc::Link>> ssdHost;

    std::unique_ptr<acc::Accelerator> onChipAcc;
    std::unique_ptr<acc::Accelerator> cpuCore;
    std::vector<std::unique_ptr<acc::AimModule>> aims;
    std::vector<std::unique_ptr<acc::NsModule>> nss;

    std::unique_ptr<gam::Gam> gamUnit;
    std::uint32_t onChipId = ~0u;
    std::uint32_t cpuId = ~0u;
    std::vector<std::uint32_t> aimIds;
    std::vector<std::uint32_t> nsIds;

    energy::EnergyModel energy;
};

} // namespace reach::core

#endif // REACH_CORE_REACH_SYSTEM_HH
