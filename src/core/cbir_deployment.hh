/**
 * @file
 * Deployment of the CBIR pipeline onto the compute hierarchy
 * (paper §IV-B and §VI).
 *
 * Four mappings are supported:
 *  - OnChipOnly:   all three stages on the on-chip accelerator
 *                  (the paper's baseline);
 *  - NearMemOnly:  all stages on the AIM modules;
 *  - NearStorOnly: all stages on the near-storage modules;
 *  - Reach:        the proper mapping — feature extraction on-chip,
 *                  short-list retrieval near memory, rerank near
 *                  storage.
 *
 * Each query batch becomes one GAM job whose task graph encodes the
 * level assignment, data partitioning across instances, and
 * inter-stage transfers.
 */

#ifndef REACH_CORE_CBIR_DEPLOYMENT_HH
#define REACH_CORE_CBIR_DEPLOYMENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cbir/workload_model.hh"
#include "core/reach_system.hh"
#include "gam/task.hh"

namespace reach::core
{

enum class Mapping
{
    /** Software on the host core: the pre-acceleration baseline the
     *  paper's introduction argues against. */
    CpuOnly,
    OnChipOnly,
    NearMemOnly,
    NearStorOnly,
    Reach,
};

const char *mappingName(Mapping m);

/** Result of running a stream of query batches. */
struct RunResult
{
    std::uint32_t batches = 0;
    /** Batches that completed; the rest failed explicitly. */
    std::uint32_t completedBatches = 0;
    /** Batches the fault-recovery machinery gave up on. */
    std::uint32_t failedBatches = 0;
    sim::Tick makespan = 0;
    /**
     * Mean / max submit-to-complete latency, aggregated over
     * completed batches only — a failed batch returns no result, so
     * its (truncated) lifetime must not dilute the latency of the
     * work that was actually delivered.
     */
    sim::Tick meanLatency = 0;
    sim::Tick maxLatency = 0;

    /** Fraction of batches that produced a result. */
    double
    completionFraction() const
    {
        if (batches == 0)
            return 1.0;
        return static_cast<double>(completedBatches) / batches;
    }

    /**
     * Goodput: batches that actually produced a result per second.
     * Failed batches burn machine time (it is in the makespan) but
     * deliver nothing, so they do not count as throughput.
     */
    double
    throughputBatchesPerSec() const
    {
        if (makespan == 0)
            return 0;
        return completedBatches / sim::secondsFromTicks(makespan);
    }

    /** Offered load: every submitted batch, failures included. */
    double
    offeredBatchesPerSec() const
    {
        if (makespan == 0)
            return 0;
        return batches / sim::secondsFromTicks(makespan);
    }

    /** Goodput in queries/s (completed batches only). */
    double
    queriesPerSec(std::uint32_t batch_size) const
    {
        return throughputBatchesPerSec() * batch_size;
    }

    double
    offeredQueriesPerSec(std::uint32_t batch_size) const
    {
        return offeredBatchesPerSec() * batch_size;
    }
};

class CbirDeployment
{
  public:
    /**
     * @param instances Number of accelerator instances to use at the
     *        near-data levels (0 = all available).
     */
    CbirDeployment(ReachSystem &system,
                   const cbir::CbirWorkloadModel &model, Mapping mapping,
                   std::uint32_t instances = 0);

    /**
     * Build the job for one query batch. @p on_failed (optional)
     * fires instead of @p on_done when the GAM exhausts the job's
     * fault-recovery budget.
     */
    gam::JobDesc makeBatchJob(
        std::uint32_t batch_index,
        std::function<void(sim::Tick)> on_done,
        std::function<void(sim::Tick)> on_failed = {});

    /**
     * Submit @p batches jobs back-to-back and simulate to
     * completion. Jobs pipeline through the GAM, so makespan reflects
     * steady-state throughput. Under fault injection, batches whose
     * recovery budget is exhausted count in failedBatches instead of
     * hanging the run.
     */
    RunResult run(std::uint32_t batches);

    Mapping mapping() const { return map; }
    std::uint32_t instancesUsed() const { return numInstances; }

  private:
    /** WorkUnit + task list for the feature-extraction stage. */
    void addFeatureTasks(gam::JobDesc &job);
    /** Short-list stage; returns indices of its tasks. */
    std::vector<std::size_t> addShortlistTasks(
        gam::JobDesc &job, const std::vector<std::size_t> &fe_tasks);
    std::vector<std::size_t> addRerankTasks(
        gam::JobDesc &job, const std::vector<std::size_t> &sl_tasks);

    /** Optional 4th stage: fetch the top-K images (extension). */
    void addReverseLookupTasks(
        gam::JobDesc &job, const std::vector<std::size_t> &rr_tasks);

    /** SSD-array gather path terminating at a coherent/NM consumer. */
    acc::Path ssdGatherPathTo(acc::Level level, std::uint32_t instance);

    ReachSystem &sys;
    cbir::CbirWorkloadModel model;
    Mapping map;
    std::uint32_t numInstances;
};

} // namespace reach::core

#endif // REACH_CORE_CBIR_DEPLOYMENT_HH
