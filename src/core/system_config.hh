/**
 * @file
 * The machine configuration (paper Table II), plus the bulk-link
 * bandwidth parameters derived from it.
 */

#ifndef REACH_CORE_SYSTEM_CONFIG_HH
#define REACH_CORE_SYSTEM_CONFIG_HH

#include <cstdint>

#include "fault/fault.hh"
#include "gam/gam.hh"
#include "mem/cache.hh"
#include "mem/dram_timings.hh"
#include "mem/tlb.hh"
#include "storage/ssd.hh"

namespace reach::core
{

struct SystemConfig
{
    // ----- Table II -----

    /** Host DIMMs reserved for the CPU / on-chip accelerator. */
    std::uint32_t hostDimms = 4;
    /** Near-memory AIM modules, one per extra DIMM. */
    std::uint32_t numAimModules = 4;
    /** NVMe SSDs (one near-storage module per SSD). */
    std::uint32_t numSsds = 4;
    /** Memory channels (memory controllers). */
    std::uint32_t numChannels = 2;
    bool hasOnChipAcc = true;

    mem::DramTimings dram{};
    mem::CacheConfig cache{};
    mem::TlbConfig tlb{};
    storage::SsdConfig ssd{};
    gam::GamConfig gam{};
    /**
     * Fault-injection plan (default: nothing injected). When enabled,
     * the system builds a FaultInjector and wires it into every
     * accelerator, link, SSD, and the GAM's status polls.
     */
    fault::FaultPlan faultPlan{};

    // ----- Link bandwidths (bytes/second) -----

    /** On-chip accelerator to shared LLC (Table II: 100 GB/s). */
    double cacheLinkBw = 100e9;
    /** AIM module to its DIMM (Table II: 18 GB/s). */
    double aimLocalBw = 18e9;
    /** DDR DIMM access latency charged on the AIM-local link. */
    sim::Tick aimLocalLatency = 50'000;
    /**
     * HBM option for the AIM-local links (ScanPlacement::Hbm): an
     * HBM2 stack per module trades a wider interface (per-module
     * share of stack bandwidth) for slightly longer access latency
     * than a directly attached DIMM.
     */
    double aimHbmBw = 64e9;
    sim::Tick aimHbmLatency = 60'000;
    /**
     * Back the AIM modules with HBM instead of DDR DIMMs. Mirrors
     * ScaleConfig::shortlistPlacement — CoSimulation and the bench
     * sweeps derive this flag from the workload knob so the timing
     * links always match the modeled placement.
     */
    bool aimUsesHbm = false;
    /** Near-storage FPGA to its SSD (Table II: 12 GB/s effective). */
    double nsLocalBw = 12e9;
    /** Host PCIe uplink, gen3 x16 after IO-stack derating. */
    double hostPcieBw = 12e9;
    /** Per-SSD host-side lanes (x4) after derating. */
    double perSsdHostBw = 3.2e9;
    /** Inter-DIMM AIMbus. */
    double aimBusBw = 12.8e9;
    /**
     * Sustained host-DRAM streaming bandwidth for bulk traffic;
     * 0 = calibrate from the detailed DDR4 model at construction.
     */
    double hostDramStreamBw = 0;

    // ----- Random-gather concurrency (bytes/second per instance) -----
    // Small random reads at flash latency cannot fill a fat pipe;
    // each device class sustains what its outstanding-request window
    // covers. These caps shape the paper's Fig. 11: near-memory
    // rerank instances each extract a slice of the host IO bandwidth
    // (plateauing at the shared uplink), while SSD-attached modules
    // scale linearly with drive count.

    /** On-chip accelerator gathering over the host IO stack. */
    double onChipGatherBw = 9.0e9;
    /** The host core gathering through the full IO software stack. */
    double cpuGatherBw = 6.0e9;
    /** An AIM module gathering over the host IO stack. */
    double nmGatherBw = 4.0e9;
    /** A near-storage module gathering from its own flash. */
    double nsGatherBw = 8.0e9;

    /** Partial-reconfiguration delay (paper charges zero). */
    sim::Tick reconfigDelay = 0;

    /** Per-AIM-DIMM capacity share of near-memory regions. */
    std::uint64_t aimRegionBytes = std::uint64_t(4) << 30;
};

} // namespace reach::core

#endif // REACH_CORE_SYSTEM_CONFIG_HH
