#include "reach_system.hh"

#include <algorithm>
#include <string>

#include "mem/calibration.hh"
#include "sim/logging.hh"

namespace reach::core
{

ReachSystem::ReachSystem(const SystemConfig &config) : cfg(config)
{
    if (cfg.numChannels == 0)
        sim::fatal("system needs at least one memory channel");
    if (cfg.hostDimms < cfg.numChannels) {
        sim::fatal("need at least one host DIMM per channel (",
                   cfg.hostDimms, " DIMMs for ", cfg.numChannels,
                   " channels)");
    }
    if (cfg.numSsds == 0)
        sim::fatal("the storage system needs at least one SSD");
    if (cfg.numAimModules > 64 || cfg.numSsds > 64) {
        sim::fatal("instance counts above 64 are outside the "
                   "validated model range");
    }
    for (double bw :
         {cfg.cacheLinkBw, cfg.aimLocalBw, cfg.nsLocalBw,
          cfg.hostPcieBw, cfg.perSsdHostBw, cfg.aimBusBw,
          cfg.onChipGatherBw, cfg.cpuGatherBw, cfg.nmGatherBw,
          cfg.nsGatherBw}) {
        if (!(bw > 0)) {
            sim::fatal("system link/gather bandwidths must be "
                       "positive (got ", bw, " B/s)");
        }
    }
    if (cfg.hostDramStreamBw < 0)
        sim::fatal("hostDramStreamBw must be >= 0 (0 = calibrate)");
    cfg.faultPlan.validate();

    buildMemory();
    buildStorage();
    buildAccelerators();
    wireGam();
    wireFaults();
    registerEnergy();
}

void
ReachSystem::buildMemory()
{
    // DIMM slots: host DIMMs first, then one slot per AIM module,
    // spread evenly across channels.
    std::uint32_t total_dimms = cfg.hostDimms + cfg.numAimModules;
    std::uint32_t per_channel =
        (total_dimms + cfg.numChannels - 1) / cfg.numChannels;
    per_channel = std::max<std::uint32_t>(per_channel, 1);

    mem::MemorySystemConfig mcfg;
    mcfg.numChannels = cfg.numChannels;
    mcfg.dimmsPerChannel = per_channel;
    mcfg.dimmTimings = cfg.dram;
    memSys = std::make_unique<mem::MemorySystem>(sim, "mem", mcfg);

    // Host region: cache-line interleave across the host DIMMs.
    std::vector<mem::DimmRef> host_units;
    for (std::uint32_t i = 0; i < cfg.hostDimms; ++i) {
        host_units.push_back(
            {i % cfg.numChannels, i / cfg.numChannels});
    }
    memSys->addRegion("host", std::uint64_t(16) << 30, host_units,
                      mem::cacheLineBytes);

    cache = std::make_unique<mem::Cache>(sim, "llc", *memSys,
                                         cfg.cache);
    tlb = std::make_unique<mem::Tlb>(sim, "accTlb", cfg.tlb);

    // Calibrate the host streaming bandwidth from the detailed model
    // unless the config pins it.
    if (cfg.hostDramStreamBw > 0) {
        hostDramBw = cfg.hostDramStreamBw;
    } else {
        auto cal = mem::measureStreamingBandwidth(
            cfg.dram, cfg.numChannels,
            std::max<std::uint32_t>(cfg.hostDimms / cfg.numChannels, 1));
        hostDramBw = cal.bandwidth;
    }

    noc::LinkConfig dram_link;
    dram_link.bandwidth = hostDramBw;
    dram_link.latency = 60'000; // ~60 ns loaded DRAM latency
    hostDram = std::make_unique<noc::Link>(sim, "hostDramBulk",
                                           dram_link);

    noc::LinkConfig cache_link;
    cache_link.bandwidth = cfg.cacheLinkBw;
    cache_link.latency = 10'000; // LLC access
    cachePort = std::make_unique<noc::Link>(sim, "cachePort",
                                            cache_link);

    noc::LinkConfig bus_link;
    bus_link.bandwidth = cfg.aimBusBw;
    bus_link.latency = 40'000;
    aimBus = std::make_unique<noc::Link>(sim, "aimBus", bus_link);
}

void
ReachSystem::buildStorage()
{
    noc::LinkConfig io_link;
    io_link.bandwidth = cfg.hostPcieBw;
    io_link.latency = 500'000; // host IO stack
    hostIo = std::make_unique<noc::Link>(sim, "hostIoUplink", io_link);

    for (std::uint32_t i = 0; i < cfg.numSsds; ++i) {
        ssds.push_back(std::make_unique<storage::Ssd>(
            sim, "ssd" + std::to_string(i), cfg.ssd));

        noc::LinkConfig host_side;
        host_side.bandwidth = cfg.perSsdHostBw;
        host_side.latency = 300'000;
        ssdHost.push_back(std::make_unique<noc::Link>(
            sim, "ssdHost" + std::to_string(i), host_side));
    }
}

void
ReachSystem::buildAccelerators()
{
    if (cfg.hasOnChipAcc) {
        onChipAcc = std::make_unique<acc::Accelerator>(
            sim, "onChipAcc", acc::Level::OnChip);
        onChipAcc->attachTlb(*tlb);
        onChipAcc->setResidentPath(acc::Path{}.via(*cachePort));
        onChipAcc->setInputPath(
            acc::Path{}.via(*hostDram).via(*cachePort));
        onChipAcc->setOutputPath(acc::Path{}.via(*cachePort));
        onChipAcc->setParamPath(
            acc::Path{}.via(*hostDram).via(*cachePort));
        // On-chip SRAM retains parameters across tasks.
        onChipAcc->enableParamBuffer(std::uint64_t(40) << 20,
                                     cfg.cacheLinkBw);
    }

    // The host core doubles as a software compute target so CPU-only
    // baselines run through the same GAM machinery.
    cpuCore = std::make_unique<acc::Accelerator>(sim, "hostCore",
                                                 acc::Level::Cpu);
    cpuCore->setResidentPath(acc::Path{}.via(*cachePort));
    cpuCore->setInputPath(acc::Path{}.via(*hostDram).via(*cachePort));
    cpuCore->setOutputPath(acc::Path{}.via(*cachePort));
    cpuCore->setParamPath(acc::Path{}.via(*hostDram).via(*cachePort));
    cpuCore->enableParamBuffer(cfg.cache.sizeBytes, cfg.cacheLinkBw);

    // Near-memory AIM modules: one per extra DIMM slot after the
    // host DIMMs, in channel-round-robin slot order.
    for (std::uint32_t i = 0; i < cfg.numAimModules; ++i) {
        std::uint32_t slot = cfg.hostDimms + i;
        mem::DimmRef ref{slot % cfg.numChannels,
                         slot / cfg.numChannels};

        noc::LinkConfig local;
        local.bandwidth = cfg.aimUsesHbm ? cfg.aimHbmBw
                                         : cfg.aimLocalBw;
        local.latency = cfg.aimUsesHbm ? cfg.aimHbmLatency
                                       : cfg.aimLocalLatency;
        aimLocal.push_back(std::make_unique<noc::Link>(
            sim, "aimLocal" + std::to_string(i), local));

        auto module = std::make_unique<acc::AimModule>(
            sim, "aim" + std::to_string(i), memSys->dimmAt(ref),
            aimBus.get());
        module->setInputPath(acc::Path{}.via(*aimLocal.back()));
        module->setOutputPath(acc::Path{}.via(*aimLocal.back()));
        module->setParamPath(acc::Path{}.via(*aimLocal.back()));
        // The module's parameters stay in its DIMM.
        module->enableParamBuffer(cfg.aimRegionBytes, local.bandwidth);
        aims.push_back(std::move(module));

        // Tile-granular region so each tile lives in one DIMM.
        memSys->addRegion("aimRegion" + std::to_string(i),
                          cfg.aimRegionBytes, {ref},
                          std::uint64_t(1) << 20);
    }

    // Near-storage modules: one per SSD.
    for (std::uint32_t i = 0; i < cfg.numSsds; ++i) {
        noc::LinkConfig local;
        local.bandwidth = cfg.nsLocalBw;
        local.latency = 80'000;
        nsLocal.push_back(std::make_unique<noc::Link>(
            sim, "nsLocal" + std::to_string(i), local));

        auto module = std::make_unique<acc::NsModule>(
            sim, "ns" + std::to_string(i), *ssds[i]);
        module->setInputPath(
            acc::Path{}.from(ssds[i].get(), nullptr).via(
                *nsLocal.back()));
        module->setOutputPath(
            acc::Path{}.via(*ssdHost[i]).via(*hostIo));
        // Parameter misses come from the host over PCIe.
        module->setParamPath(acc::Path{}.via(*hostDram).via(*hostIo).via(
            *ssdHost[i]));
        nss.push_back(std::move(module));
    }
}

void
ReachSystem::wireGam()
{
    gamUnit = std::make_unique<gam::Gam>(sim, "gam", cfg.gam);

    // Buffer-table capacities per level (Fig. 5c): on-chip SRAM, the
    // AIM DIMM regions, the SSD array, and the host DRAM region.
    gamUnit->buffers().setCapacity(acc::Level::OnChip,
                                   acc::virtexVu9p().bramBytes);
    gamUnit->buffers().setCapacity(
        acc::Level::NearMem,
        std::uint64_t(cfg.numAimModules) * cfg.aimRegionBytes);
    gamUnit->buffers().setCapacity(
        acc::Level::NearStor,
        std::uint64_t(cfg.numSsds) * cfg.ssd.capacityBytes);
    gamUnit->buffers().setCapacity(acc::Level::Cpu,
                                   std::uint64_t(16) << 30);

    if (onChipAcc)
        onChipId = gamUnit->addAccelerator(*onChipAcc);
    cpuId = gamUnit->addAccelerator(*cpuCore);
    for (auto &a : aims)
        aimIds.push_back(gamUnit->addAccelerator(*a));
    for (auto &n : nss)
        nsIds.push_back(gamUnit->addAccelerator(*n));

    gamUnit->setPathProvider(
        [this](const acc::Accelerator *from, const acc::Accelerator *to) {
            return pathBetween(from, to);
        });

    // Forced writebacks drain through the host DRAM channels.
    gamUnit->setFlushHook(
        [this](std::uint64_t bytes,
               std::function<void(sim::Tick)> done) {
            sim::Tick t = hostDram->reserve(bytes, sim.now());
            sim.events().schedule(t, [done, t] { done(t); },
                                  sim::EventPriority::Default,
                                  "flushDone");
        });
}

void
ReachSystem::wireFaults()
{
    if (!cfg.faultPlan.enabled())
        return;

    faultInj = std::make_unique<fault::FaultInjector>(sim, "faultInj",
                                                      cfg.faultPlan);

    gamUnit->setFaultInjector(faultInj.get());
    if (onChipAcc)
        onChipAcc->setFaultInjector(faultInj.get());
    cpuCore->setFaultInjector(faultInj.get());
    for (auto &a : aims)
        a->setFaultInjector(faultInj.get());
    for (auto &n : nss)
        n->setFaultInjector(faultInj.get());

    for (noc::Link *l : {hostDram.get(), cachePort.get(),
                         aimBus.get(), hostIo.get()})
        l->setFaultInjector(faultInj.get());
    for (auto &l : aimLocal)
        l->setFaultInjector(faultInj.get());
    for (auto &l : nsLocal)
        l->setFaultInjector(faultInj.get());
    for (auto &l : ssdHost)
        l->setFaultInjector(faultInj.get());

    for (auto &s : ssds)
        s->setFaultInjector(faultInj.get());
}

acc::Path
ReachSystem::pathBetween(const acc::Accelerator *from,
                         const acc::Accelerator *to)
{
    using acc::Level;
    Level src = from ? from->level() : Level::Cpu;
    Level dst = to ? to->level() : Level::Cpu;

    auto ns_index = [this](const acc::Accelerator *a) -> std::uint32_t {
        for (std::uint32_t i = 0; i < nss.size(); ++i)
            if (nss[i].get() == a)
                return i;
        sim::panic("near-storage module not found in system");
    };

    acc::Path p;
    bool src_coherent = src == Level::Cpu || src == Level::OnChip;
    bool dst_coherent = dst == Level::Cpu || dst == Level::OnChip;

    if (src_coherent && dst_coherent) {
        // Stays inside the coherent domain.
        return p.via(*cachePort);
    }

    if (src_coherent && dst == Level::NearMem) {
        // Write through the memory channels into the AIM DIMM.
        return p.via(*hostDram);
    }
    if (src_coherent && dst == Level::NearStor) {
        return p.via(*hostIo).via(*ssdHost[ns_index(to)]);
    }

    if (src == Level::NearMem && dst == Level::NearMem)
        return p.via(*aimBus);
    if (src == Level::NearMem && dst_coherent)
        return p.via(*hostDram);
    if (src == Level::NearMem && dst == Level::NearStor) {
        return p.via(*hostDram).via(*hostIo).via(
            *ssdHost[ns_index(to)]);
    }

    std::uint32_t si = ns_index(from);
    if (dst_coherent)
        return p.via(*ssdHost[si]).via(*hostIo);
    if (dst == Level::NearMem)
        return p.via(*ssdHost[si]).via(*hostIo).via(*hostDram);
    // NS -> NS: hop through the host IO switch.
    return p.via(*ssdHost[si]).via(*hostIo).via(
        *ssdHost[ns_index(to)]);
}

void
ReachSystem::registerEnergy()
{
    using energy::Component;
    if (onChipAcc)
        energy.addAccelerator(*onChipAcc);
    energy.addAccelerator(*cpuCore);
    for (auto &a : aims)
        energy.addAccelerator(*a);
    for (auto &n : nss)
        energy.addAccelerator(*n);

    energy.addCache(*cache);
    energy.addMemorySystem(*memSys);
    for (auto &s : ssds)
        energy.addSsd(*s);

    energy.addLink(*hostDram, Component::Dram);
    energy.addLink(*cachePort, Component::Cache);
    energy.addLink(*aimBus, Component::McInterconnect);
    energy.addLink(*hostIo, Component::Pcie);
    for (auto &l : aimLocal)
        energy.addLink(*l, Component::Dram);
    for (auto &l : nsLocal)
        energy.addLink(*l, Component::Pcie);
    for (auto &l : ssdHost)
        energy.addLink(*l, Component::Pcie);

    energy.addGam(*gamUnit);
}

acc::Accelerator &
ReachSystem::onChip()
{
    if (!onChipAcc)
        sim::fatal("this configuration has no on-chip accelerator");
    return *onChipAcc;
}

sim::Tick
ReachSystem::runUntilIdle()
{
    sim::Tick t = sim.runUntil([this] { return gamUnit->idle(); });
    // runUntil() also returns when the event queue drains. If jobs
    // are still pending at that point the simulated system wedged —
    // fail loudly with the progress table instead of letting callers
    // see a silent partial result.
    if (!gamUnit->idle())
        gamUnit->reportWedge("ReachSystem::runUntilIdle");
    return t;
}

energy::EnergyBreakdown
ReachSystem::measureEnergy()
{
    return energy.measure(sim.now());
}

} // namespace reach::core
