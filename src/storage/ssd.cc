#include "ssd.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace reach::storage
{

Ssd::Ssd(sim::Simulator &sim, const std::string &name,
         const SsdConfig &config)
    : sim::SimObject(sim, name),
      cfg(config),
      channels(config.flashChannels),
      statReadBytes(name + ".readBytes", "bytes read from flash"),
      statWriteBytes(name + ".writeBytes", "bytes written to flash"),
      statCommands(name + ".commands", "NVMe commands processed"),
      statActive(name + ".activeTicks", "ticks moving data"),
      statTimeouts(name + ".timeouts", "injected command timeouts")
{
    if (cfg.flashChannels == 0)
        sim::fatal(name, ": SSD needs at least one flash channel");
    registerStat(statReadBytes);
    registerStat(statWriteBytes);
    registerStat(statCommands);
    registerStat(statActive);
    registerStat(statTimeouts);
}

sim::Tick
Ssd::reserve(std::uint64_t bytes, bool write, sim::Tick at)
{
    ++statCommands;

    // An injected timeout models a dropped NVMe command: the host
    // retries after the timeout window, so the effective start of the
    // operation slips by the retry delay.
    sim::Tick retry = 0;
    if (faultInj) {
        retry = faultInj->ssdTimeoutTicks(name());
        if (retry > 0)
            ++statTimeouts;
    }

    if (bytes == 0)
        return at + retry + cfg.commandOverhead;

    sim::Tick media_latency = write ? cfg.writeLatency : cfg.readLatency;
    sim::Tick start = at + retry + cfg.commandOverhead;

    // Stripe evenly across flash channels; completion is the slowest
    // channel's finish time plus the media first-access latency.
    std::uint64_t per_channel =
        (bytes + cfg.flashChannels - 1) / cfg.flashChannels;
    sim::Tick ser = sim::transferTicks(per_channel, cfg.channelBandwidth);

    sim::Tick done = 0;
    for (auto &channel : channels) {
        sim::Tick ch_start = channel.reserve(ser, start, now());
        done = std::max(done, ch_start + ser);
    }

    statActive += static_cast<double>(ser);
    if (write)
        statWriteBytes += static_cast<double>(bytes);
    else
        statReadBytes += static_cast<double>(bytes);

    return done + media_latency;
}

void
Ssd::access(std::uint64_t bytes, bool write,
            std::function<void(sim::Tick)> on_done)
{
    sim::Tick done = reserve(bytes, write, now());
    if (on_done) {
        schedule(done, [this, on_done] { on_done(now()); },
                 sim::EventPriority::Default, "ssdDone");
    }
}

double
Ssd::energyJoules(sim::Tick horizon) const
{
    double active_s = sim::secondsFromTicks(activeTicks());
    double total_s = sim::secondsFromTicks(horizon);
    active_s = std::min(active_s, total_s);
    double idle_s = total_s - active_s;
    return active_s * cfg.activePowerW + idle_s * cfg.idlePowerW;
}

} // namespace reach::storage
