/**
 * @file
 * An NVMe SSD timing model.
 *
 * Internally the drive stripes data across multiple flash channels;
 * the aggregate internal bandwidth therefore exceeds what the host IO
 * interconnect can carry, which is exactly the gap near-storage
 * acceleration exploits (paper §II-C). The drive itself is a passive
 * model: callers reserve flash time and connect the result to either
 * the host PCIe path or the accelerator-local FPGA link.
 */

#ifndef REACH_STORAGE_SSD_HH
#define REACH_STORAGE_SSD_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/fault.hh"
#include "sim/interval_resource.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace reach::storage
{

struct SsdConfig
{
    std::uint32_t flashChannels = 8;
    /** Per-flash-channel sustained bandwidth, bytes/second. */
    double channelBandwidth = 1.75e9;
    /** First-byte flash read latency. */
    sim::Tick readLatency = 70'000'000; // 70 us
    /** Program latency (buffered writes). */
    sim::Tick writeLatency = 30'000'000; // 30 us
    /** NVMe command processing overhead. */
    sim::Tick commandOverhead = 5'000'000; // 5 us
    std::uint64_t capacityBytes = std::uint64_t(4) << 40;

    /** Power model (Seagate Nytro-class NVMe drive). */
    double activePowerW = 12.0;
    double idlePowerW = 5.0;

    double
    internalBandwidth() const
    {
        return channelBandwidth * flashChannels;
    }
};

class Ssd : public sim::SimObject
{
  public:
    Ssd(sim::Simulator &sim, const std::string &name,
        const SsdConfig &cfg = {});

    const SsdConfig &config() const { return cfg; }

    /**
     * Reserve flash time for a @p bytes read/write starting no
     * earlier than @p at.
     * @return tick when the last byte is available at the drive's
     *         internal buffer (caller adds interconnect time).
     */
    sim::Tick reserve(std::uint64_t bytes, bool write, sim::Tick at);

    /** Event-scheduling convenience over reserve(). */
    void access(std::uint64_t bytes, bool write,
                std::function<void(sim::Tick)> on_done);

    std::uint64_t bytesRead() const
    {
        return static_cast<std::uint64_t>(statReadBytes.value());
    }
    std::uint64_t bytesWritten() const
    {
        return static_cast<std::uint64_t>(statWriteBytes.value());
    }

    /** Ticks the drive spent actively moving data. */
    sim::Tick activeTicks() const
    {
        return static_cast<sim::Tick>(statActive.value());
    }

    /**
     * Energy consumed up to @p horizon ticks of simulated time:
     * active power while transferring plus idle power otherwise.
     * Result in joules.
     */
    double energyJoules(sim::Tick horizon) const;

    /** Attach a fault injector consulted once per command. */
    void setFaultInjector(fault::FaultInjector *inj) { faultInj = inj; }

    std::uint64_t timeoutsInjected() const
    {
        return static_cast<std::uint64_t>(statTimeouts.value());
    }

  private:
    SsdConfig cfg;
    /** Per-flash-channel reservation schedule (gap-filling). */
    std::vector<sim::IntervalResource> channels;
    fault::FaultInjector *faultInj = nullptr;

    sim::Scalar statReadBytes;
    sim::Scalar statWriteBytes;
    sim::Scalar statCommands;
    sim::Scalar statActive;
    sim::Scalar statTimeouts;
};

} // namespace reach::storage

#endif // REACH_STORAGE_SSD_HH
