#include "energy_model.hh"

#include <iomanip>

#include "sim/logging.hh"

namespace reach::energy
{

const char *
componentName(Component c)
{
    switch (c) {
      case Component::Acc:
        return "ACC";
      case Component::Cache:
        return "Cache";
      case Component::Dram:
        return "DRAM";
      case Component::Ssd:
        return "SSD";
      case Component::McInterconnect:
        return "MC and Interconnect";
      case Component::Pcie:
        return "PCIe";
      default:
        return "?";
    }
}

double
EnergyBreakdown::total() const
{
    double t = 0;
    for (double j : joules)
        t += j;
    return t;
}

EnergyBreakdown
EnergyBreakdown::operator-(const EnergyBreakdown &o) const
{
    EnergyBreakdown out;
    for (std::size_t i = 0; i < joules.size(); ++i)
        out.joules[i] = joules[i] - o.joules[i];
    return out;
}

EnergyBreakdown &
EnergyBreakdown::operator+=(const EnergyBreakdown &o)
{
    for (std::size_t i = 0; i < joules.size(); ++i)
        joules[i] += o.joules[i];
    return *this;
}

void
EnergyBreakdown::print(std::ostream &os, const std::string &indent) const
{
    double t = total();
    for (std::size_t i = 0; i < joules.size(); ++i) {
        os << indent << std::left << std::setw(22)
           << componentName(static_cast<Component>(i)) << " "
           << std::right << std::fixed << std::setprecision(3)
           << std::setw(10) << joules[i] << " J  ("
           << std::setprecision(1) << std::setw(5)
           << (t > 0 ? 100.0 * joules[i] / t : 0.0) << "%)\n";
    }
    os << indent << std::left << std::setw(22) << "Total" << " "
       << std::right << std::fixed << std::setprecision(3)
       << std::setw(10) << t << " J\n";
}

void
EnergyModel::addLink(const noc::Link &link, Component comp)
{
    links.emplace_back(&link, comp);
}

EnergyBreakdown
EnergyModel::measure(sim::Tick horizon) const
{
    EnergyBreakdown out;

    for (const auto *a : accs)
        out[Component::Acc] += a->energyJoules(horizon);

    for (const auto *c : caches)
        out[Component::Cache] += c->dynamicEnergyPj() * 1e-12;

    double horizon_s = sim::secondsFromTicks(horizon);
    for (const auto *m : memSystems) {
        out[Component::Dram] += m->dramDynamicEnergyPj() * 1e-12;
        double ranks = static_cast<double>(m->numChannels()) *
                       m->dimmsPerChannel() *
                       m->config().dimmTimings.ranksPerDimm;
        out[Component::Dram] +=
            ranks * m->config().dimmTimings.backgroundPowerW *
            horizon_s;
    }

    for (const auto *s : ssds)
        out[Component::Ssd] += s->energyJoules(horizon);

    // GAM control packets (launch commands, status polls and their
    // fault-recovery retries) are small but cross the MC fabric; model
    // them as one 64 B flit each.
    constexpr double control_packet_bytes = 64.0;
    for (const auto *g : gams) {
        double packets =
            static_cast<double>(g->tasksDispatched() + g->statusPolls());
        out[Component::McInterconnect] +=
            packets * control_packet_bytes * rates.mcPjPerByte * 1e-12;
    }

    for (const auto &[link, comp] : links) {
        double bytes = static_cast<double>(link->bytesMoved());
        switch (comp) {
          case Component::Dram:
            // A DRAM bulk stream exercises both the array and the
            // channel wires.
            out[Component::Dram] += bytes * rates.dramPjPerByte * 1e-12;
            out[Component::McInterconnect] +=
                bytes * rates.mcPjPerByte * 1e-12;
            break;
          case Component::Cache:
            out[Component::Cache] +=
                bytes * rates.cachePjPerByte * 1e-12;
            break;
          case Component::Pcie:
            out[Component::Pcie] += bytes * rates.pciePjPerByte * 1e-12;
            break;
          case Component::McInterconnect:
            out[Component::McInterconnect] +=
                bytes * rates.mcPjPerByte * 1e-12;
            break;
          case Component::Ssd:
          case Component::Acc:
            // Device energy comes from the device models; their link
            // bytes only add interconnect cost.
            out[Component::McInterconnect] +=
                bytes * rates.mcPjPerByte * 1e-12;
            break;
          default:
            sim::panic("unhandled component class in energy rollup");
        }
    }

    return out;
}

} // namespace reach::energy
