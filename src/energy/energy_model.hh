/**
 * @file
 * Activity-based energy accounting (paper §V, Table IV).
 *
 * The paper derives power constants from SDAccel post-routing reports
 * (accelerators), CACTI (cache), the Micron power calculator (DRAM),
 * NVMe drive datasheets (storage), and PCIe/switch datasheets
 * (interconnect), then multiplies by activity from simulation. We do
 * the same: hardware components expose activity counters, and the
 * EnergyModel rolls them up into the six component classes the
 * paper's Figure 8 / Figure 13 use.
 */

#ifndef REACH_ENERGY_ENERGY_MODEL_HH
#define REACH_ENERGY_ENERGY_MODEL_HH

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "acc/accelerator.hh"
#include "gam/gam.hh"
#include "mem/cache.hh"
#include "mem/memory_system.hh"
#include "noc/link.hh"
#include "storage/ssd.hh"

namespace reach::energy
{

/** The component classes of the paper's energy figures. */
enum class Component : std::size_t
{
    Acc = 0,
    Cache,
    Dram,
    Ssd,
    McInterconnect,
    Pcie,
    NumComponents,
};

const char *componentName(Component c);

/** Joules per component. */
struct EnergyBreakdown
{
    std::array<double, static_cast<std::size_t>(
                           Component::NumComponents)>
        joules{};

    double &operator[](Component c)
    {
        return joules[static_cast<std::size_t>(c)];
    }
    double operator[](Component c) const
    {
        return joules[static_cast<std::size_t>(c)];
    }

    double total() const;

    EnergyBreakdown operator-(const EnergyBreakdown &o) const;
    EnergyBreakdown &operator+=(const EnergyBreakdown &o);

    /** "component: J (percent)" lines. */
    void print(std::ostream &os, const std::string &indent = "") const;
};

/** Default per-byte energies for bulk-traffic links (pJ/byte). */
struct BulkEnergyRates
{
    /** Streaming DRAM traffic: burst + amortized activate energy. */
    double dramPjPerByte = 35.0;
    /** LLC/SRAM array traffic. */
    double cachePjPerByte = 4.0;
    /** Memory-channel / NoC / switch signalling. */
    double mcPjPerByte = 10.0;
    /** PCIe lanes incl. SerDes. */
    double pciePjPerByte = 35.0;
};

class EnergyModel
{
  public:
    explicit EnergyModel(BulkEnergyRates rates = {}) : rates(rates) {}

    void addAccelerator(const acc::Accelerator &a)
    {
        accs.push_back(&a);
    }
    void addCache(const mem::Cache &c) { caches.push_back(&c); }
    void addMemorySystem(const mem::MemorySystem &m)
    {
        memSystems.push_back(&m);
    }
    void addSsd(const storage::Ssd &s) { ssds.push_back(&s); }

    /**
     * Register the GAM's control traffic: every command/status packet
     * (including fault-recovery retries and re-polls) crosses the
     * memory-controller interconnect, so retries cost energy.
     */
    void addGam(const gam::Gam &g) { gams.push_back(&g); }

    /**
     * Register a bulk-traffic link and classify its bytes. A link
     * carrying DRAM streams contributes both DRAM array energy and
     * channel (MC) energy; PCIe links contribute PCIe energy.
     */
    void addLink(const noc::Link &link, Component comp);

    /** Roll up all activity into joules over [0, horizon]. */
    EnergyBreakdown measure(sim::Tick horizon) const;

  private:
    BulkEnergyRates rates;
    std::vector<const acc::Accelerator *> accs;
    std::vector<const mem::Cache *> caches;
    std::vector<const mem::MemorySystem *> memSystems;
    std::vector<const storage::Ssd *> ssds;
    std::vector<const gam::Gam *> gams;
    std::vector<std::pair<const noc::Link *, Component>> links;
};

} // namespace reach::energy

#endif // REACH_ENERGY_ENERGY_MODEL_HH
