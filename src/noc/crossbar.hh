/**
 * @file
 * A simple crossbar: N ports, each with its own ingress/egress
 * serialization, plus a constant hop latency. Used as the cache-
 * coherent on-chip NoC tying cores, GAM, the on-chip accelerator and
 * the LLC together (paper Fig. 2), and as the host IO switch fanning
 * the SSD array into the host PCIe lanes.
 */

#ifndef REACH_NOC_CROSSBAR_HH
#define REACH_NOC_CROSSBAR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "noc/link.hh"
#include "sim/simulator.hh"

namespace reach::noc
{

struct CrossbarConfig
{
    /** Per-port bandwidth, bytes/second. */
    double portBandwidth = 100e9;
    /** Constant switch traversal latency. */
    sim::Tick hopLatency = 5'000; // 5 ns
    double energyPerBitPj = 0.15;
};

class Crossbar : public sim::SimObject
{
  public:
    Crossbar(sim::Simulator &sim, const std::string &name,
             std::uint32_t num_ports, const CrossbarConfig &cfg = {});

    /**
     * Move @p bytes from port @p src to port @p dst. Serializes on
     * both the source egress and destination ingress.
     */
    sim::Tick transfer(std::uint32_t src, std::uint32_t dst,
                       std::uint64_t bytes,
                       std::function<void(sim::Tick)> on_done = nullptr);

    std::uint32_t numPorts() const
    {
        return static_cast<std::uint32_t>(ports.size());
    }

    /** Aggregate bytes through the switch. */
    std::uint64_t bytesMoved() const;

    /** Dynamic switch energy, picojoules. */
    double dynamicEnergyPj() const;

  private:
    struct Port
    {
        std::unique_ptr<Link> egress;
        std::unique_ptr<Link> ingress;
    };

    CrossbarConfig cfg;
    std::vector<Port> ports;
};

} // namespace reach::noc

#endif // REACH_NOC_CROSSBAR_HH
