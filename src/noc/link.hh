/**
 * @file
 * Bandwidth/latency link models used for every interconnect in the
 * system: the on-chip NoC port between accelerator and LLC, memory
 * channels, the AIMbus between DIMMs, PCIe links to SSDs, and the
 * host IO switch.
 *
 * A Link serializes transfers: each transfer occupies the link for
 * size/bandwidth and is delivered one propagation latency after its
 * last byte leaves. Energy is accounted per bit.
 */

#ifndef REACH_NOC_LINK_HH
#define REACH_NOC_LINK_HH

#include <cstdint>
#include <functional>

#include "fault/fault.hh"
#include "sim/interval_resource.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace reach::noc
{

struct LinkConfig
{
    /** Sustained bandwidth, bytes per second. */
    double bandwidth = 10e9;
    /** Propagation latency added after serialization. */
    sim::Tick latency = 100; // 100 ps
    /** Fixed per-transfer overhead (protocol, DMA setup). */
    sim::Tick perTransferOverhead = 0;
    /** Energy per bit moved, picojoules. */
    double energyPerBitPj = 1.0;
};

class Link : public sim::SimObject
{
  public:
    Link(sim::Simulator &sim, const std::string &name,
         const LinkConfig &cfg);

    /**
     * Move @p bytes across the link.
     *
     * @param on_done Called at delivery time of the last byte.
     * @return the delivery tick.
     */
    sim::Tick transfer(std::uint64_t bytes,
                       std::function<void(sim::Tick)> on_done = nullptr);

    /**
     * Compute when a transfer of @p bytes starting no earlier than
     * @p at would complete, *and* reserve the link for it. The link
     * keeps a set of busy intervals and slots the transfer into the
     * earliest gap at or after @p at, so a reservation made far in
     * the future (e.g. a task's output drain) does not block
     * earlier-in-time traffic from other requesters.
     */
    sim::Tick reserve(std::uint64_t bytes, sim::Tick at);

    /** Tick after the last reservation currently held. */
    sim::Tick freeAt() const { return schedule_.freeAt(); }

    double bandwidth() const { return cfg.bandwidth; }

    std::uint64_t bytesMoved() const
    {
        return static_cast<std::uint64_t>(statBytes.value());
    }

    /** Total ticks the link spent serializing data. */
    sim::Tick busyTicks() const
    {
        return static_cast<sim::Tick>(statBusy.value());
    }

    /** Dynamic interconnect energy so far, picojoules. */
    double dynamicEnergyPj() const
    {
        return statBytes.value() * 8.0 * cfg.energyPerBitPj;
    }

    /** Utilization in [0,1] over the sim so far. */
    double utilization() const;

    /** Attach a fault injector consulted once per reservation. */
    void setFaultInjector(fault::FaultInjector *inj) { faultInj = inj; }

    std::uint64_t stallsInjected() const
    {
        return static_cast<std::uint64_t>(statStalls.value());
    }

  private:
    LinkConfig cfg;
    sim::IntervalResource schedule_;
    fault::FaultInjector *faultInj = nullptr;

    sim::Scalar statBytes;
    sim::Scalar statTransfers;
    sim::Scalar statBusy;
    sim::Scalar statStalls;
};

/**
 * A PCIe link: theoretical bandwidth derated by IO-stack efficiency
 * (paper §I: gen3 x16 is 16 GB/s theoretical, ~12 GB/s effective).
 */
class PcieLink : public Link
{
  public:
    struct PcieConfig
    {
        double theoreticalBandwidth = 16e9;
        /** Fraction of theoretical bandwidth actually sustained. */
        double efficiency = 0.75;
        sim::Tick latency = 500'000; // 500 ns round-trip-ish
        sim::Tick perTransferOverhead = 1'000'000; // 1 us DMA setup
        double energyPerBitPj = 4.4;
    };

    PcieLink(sim::Simulator &sim, const std::string &name,
             const PcieConfig &cfg);

    /** Defaults: gen3 x16 at 75% IO-stack efficiency. */
    PcieLink(sim::Simulator &sim, const std::string &name);
};

} // namespace reach::noc

#endif // REACH_NOC_LINK_HH
