#include "crossbar.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace reach::noc
{

Crossbar::Crossbar(sim::Simulator &sim, const std::string &name,
                   std::uint32_t num_ports, const CrossbarConfig &config)
    : sim::SimObject(sim, name), cfg(config)
{
    if (num_ports < 2)
        sim::fatal(name, ": a crossbar needs at least two ports");

    LinkConfig lc;
    lc.bandwidth = cfg.portBandwidth;
    lc.latency = 0;
    lc.energyPerBitPj = cfg.energyPerBitPj / 2.0; // split across the pair

    ports.reserve(num_ports);
    for (std::uint32_t p = 0; p < num_ports; ++p) {
        Port port;
        port.egress = std::make_unique<Link>(
            sim, name + ".p" + std::to_string(p) + ".out", lc);
        port.ingress = std::make_unique<Link>(
            sim, name + ".p" + std::to_string(p) + ".in", lc);
        ports.push_back(std::move(port));
    }
}

sim::Tick
Crossbar::transfer(std::uint32_t src, std::uint32_t dst,
                   std::uint64_t bytes,
                   std::function<void(sim::Tick)> on_done)
{
    if (src >= ports.size() || dst >= ports.size())
        sim::panic(name(), ": port out of range");
    if (src == dst)
        sim::panic(name(), ": transfer to the same port");

    // Serialize through source egress, traverse, then destination
    // ingress; the ingress reservation starts when the egress is done.
    sim::Tick out_done = ports[src].egress->reserve(bytes, now());
    sim::Tick in_done =
        ports[dst].ingress->reserve(bytes, out_done + cfg.hopLatency);

    if (on_done) {
        schedule(in_done, [this, on_done] { on_done(now()); },
                 sim::EventPriority::Default, "xbarDeliver");
    }
    return in_done;
}

std::uint64_t
Crossbar::bytesMoved() const
{
    std::uint64_t total = 0;
    for (const auto &p : ports)
        total += p.egress->bytesMoved();
    return total;
}

double
Crossbar::dynamicEnergyPj() const
{
    double total = 0;
    for (const auto &p : ports) {
        total += p.egress->dynamicEnergyPj();
        total += p.ingress->dynamicEnergyPj();
    }
    return total;
}

} // namespace reach::noc
