#include "link.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace reach::noc
{

Link::Link(sim::Simulator &sim, const std::string &name,
           const LinkConfig &config)
    : sim::SimObject(sim, name),
      cfg(config),
      statBytes(name + ".bytes", "bytes moved"),
      statTransfers(name + ".transfers", "transfers"),
      statBusy(name + ".busyTicks", "ticks spent serializing"),
      statStalls(name + ".stalls", "injected stall events")
{
    if (cfg.bandwidth <= 0)
        sim::fatal(name, ": link bandwidth must be positive");
    registerStat(statBytes);
    registerStat(statTransfers);
    registerStat(statBusy);
    registerStat(statStalls);
}

sim::Tick
Link::reserve(std::uint64_t bytes, sim::Tick at)
{
    sim::Tick ser = sim::transferTicks(bytes, cfg.bandwidth);
    sim::Tick dur = cfg.perTransferOverhead + ser;

    statBytes += static_cast<double>(bytes);
    ++statTransfers;
    statBusy += static_cast<double>(ser);

    // An injected stall (retraining, backpressure) occupies the link
    // for the stall duration on top of serialization, delaying both
    // this transfer and everything queued behind it.
    if (faultInj) {
        sim::Tick stall = faultInj->linkStallTicks(name());
        if (stall > 0) {
            dur += stall;
            ++statStalls;
        }
    }

    if (dur == 0)
        return at + cfg.latency;

    sim::Tick start = schedule_.reserve(dur, at, now());
    return start + dur + cfg.latency;
}

sim::Tick
Link::transfer(std::uint64_t bytes, std::function<void(sim::Tick)> on_done)
{
    sim::Tick done = reserve(bytes, now());
    if (on_done) {
        schedule(done, [this, on_done] { on_done(now()); },
                 sim::EventPriority::Default, "deliver");
    }
    return done;
}

double
Link::utilization() const
{
    sim::Tick t = now();
    if (t == 0)
        return 0;
    return statBusy.value() / static_cast<double>(t);
}

PcieLink::PcieLink(sim::Simulator &sim, const std::string &name,
                   const PcieConfig &cfg)
    : Link(sim, name,
           LinkConfig{cfg.theoreticalBandwidth * cfg.efficiency,
                      cfg.latency, cfg.perTransferOverhead,
                      cfg.energyPerBitPj})
{
}

PcieLink::PcieLink(sim::Simulator &sim, const std::string &name)
    : PcieLink(sim, name, PcieConfig{})
{
}

} // namespace reach::noc
