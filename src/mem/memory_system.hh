/**
 * @file
 * The main-memory complex: DIMMs behind per-channel controllers, plus
 * named *regions* that define how address ranges interleave across
 * channels and DIMMs.
 *
 * Regions are the mechanism behind the GAM's memory reorganization
 * (paper §III-B): a host region interleaves at cache-line granularity
 * across the host-facing DIMMs, while each near-memory region
 * interleaves at the accelerator's tile granularity across the
 * AIM-attached DIMMs.
 */

#ifndef REACH_MEM_MEMORY_SYSTEM_HH
#define REACH_MEM_MEMORY_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/dimm.hh"
#include "mem/mem_controller.hh"
#include "mem/packet.hh"
#include "sim/simulator.hh"

namespace reach::mem
{

struct MemorySystemConfig
{
    std::uint32_t numChannels = 2;
    std::uint32_t dimmsPerChannel = 4;
    DramTimings dimmTimings{};
    MemCtrlConfig ctrlConfig{};
};

/** A (controller, dimm-slot) pair. */
struct DimmRef
{
    std::uint32_t channel = 0;
    std::uint32_t dimm = 0;

    bool
    operator==(const DimmRef &o) const
    {
        return channel == o.channel && dimm == o.dimm;
    }
};

class MemorySystem : public sim::SimObject
{
  public:
    MemorySystem(sim::Simulator &sim, const std::string &name,
                 const MemorySystemConfig &cfg = {});

    /**
     * Carve out a region of the physical address space.
     *
     * @param region_name      For stats/errors.
     * @param size             Region size in bytes.
     * @param units            DIMMs the region stripes across.
     * @param interleave_bytes Striping granularity.
     * @return base address of the new region.
     */
    Addr addRegion(const std::string &region_name, std::uint64_t size,
                   std::vector<DimmRef> units,
                   std::uint64_t interleave_bytes);

    /** Route one line-sized request by physical address. */
    bool access(const MemRequest &req);

    /**
     * Issue a multi-line transfer with automatic retry under
     * controller backpressure.
     *
     * @param on_done Called once, when the final line completes.
     */
    void accessRange(Addr addr, std::uint64_t bytes, bool write,
                     Requester source,
                     std::function<void(sim::Tick)> on_done);

    /** Which DIMM a physical address maps to (for DMA targeting). */
    DimmRef locate(Addr addr) const;

    /** True when @p addr falls inside some region. */
    bool contains(Addr addr) const;

    MemController &controller(std::uint32_t ch)
    {
        return *ctrls.at(ch);
    }

    Dimm &
    dimmAt(const DimmRef &ref)
    {
        return ctrls.at(ref.channel)->dimm(ref.dimm);
    }

    std::uint32_t numChannels() const { return cfg.numChannels; }
    std::uint32_t dimmsPerChannel() const { return cfg.dimmsPerChannel; }
    const MemorySystemConfig &config() const { return cfg; }

    /** Total dynamic DRAM energy so far (picojoules). */
    double dramDynamicEnergyPj() const;

  private:
    struct Region
    {
        std::string name;
        Addr base = 0;
        std::uint64_t size = 0;
        std::vector<DimmRef> units;
        std::uint64_t interleave = cacheLineBytes;
        /** Per-unit base address inside each DIMM. */
        std::vector<Addr> localBase;
    };

    struct Target
    {
        DimmRef ref;
        Addr localAddr = 0;
    };

    const Region &regionFor(Addr addr) const;
    Target resolve(Addr addr) const;

    MemorySystemConfig cfg;
    std::vector<std::unique_ptr<Dimm>> dimms;
    std::vector<std::unique_ptr<MemController>> ctrls;
    std::vector<Region> regions;
    /** Next free physical address for region carving. */
    Addr nextBase = 0;
    /** Next free DIMM-local address, indexed [channel][dimm]. */
    std::vector<std::vector<Addr>> localTop;
};

} // namespace reach::mem

#endif // REACH_MEM_MEMORY_SYSTEM_HH
