/**
 * @file
 * Calibration of sustained DRAM streaming bandwidth.
 *
 * The system model resolves bulk accelerator traffic with link-level
 * reservations whose bandwidths must match what the detailed DDR4
 * model actually sustains. Instead of hard-coding a number, we run
 * the cycle-level controller/DIMM model on a streaming pattern and
 * measure it — the same calibrate-then-abstract methodology the
 * paper applies when it plugs synthesis-report numbers into PARADE.
 */

#ifndef REACH_MEM_CALIBRATION_HH
#define REACH_MEM_CALIBRATION_HH

#include <cstdint>

#include "mem/dram_timings.hh"

namespace reach::mem
{

struct StreamCalibration
{
    /** Sustained bytes/second measured on the detailed model. */
    double bandwidth = 0;
    /** Fraction of the pin-rate peak achieved. */
    double efficiency = 0;
};

/**
 * Stream @p bytes of sequential reads through a memory system with
 * the given channel/DIMM topology and measure sustained bandwidth.
 *
 * @param interleave_bytes Region interleave granularity.
 */
StreamCalibration measureStreamingBandwidth(
    const DramTimings &timings, std::uint32_t channels,
    std::uint32_t dimms_per_channel,
    std::uint64_t bytes = std::uint64_t(8) << 20,
    std::uint64_t interleave_bytes = 64);

} // namespace reach::mem

#endif // REACH_MEM_CALIBRATION_HH
