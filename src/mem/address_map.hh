/**
 * @file
 * Physical-address interleaving across channels and DIMMs.
 *
 * The GAM reorganizes the memory space between the CPU/on-chip
 * accelerator and the near-memory accelerators (paper §III-B):
 * host-facing channels interleave at cache-line granularity for
 * aggregated bandwidth, while AIM-facing channels interleave at the
 * accelerator template's tile granularity so one tile lives entirely
 * in one DIMM.
 */

#ifndef REACH_MEM_ADDRESS_MAP_HH
#define REACH_MEM_ADDRESS_MAP_HH

#include <cstdint>

#include "mem/packet.hh"
#include "sim/logging.hh"

namespace reach::mem
{

/** Location of one interleave block. */
struct DimmLocation
{
    std::uint32_t channel = 0;
    /** DIMM index within the channel. */
    std::uint32_t dimm = 0;
    /** Address within the DIMM. */
    Addr localAddr = 0;
};

/**
 * Block-cyclic address map over (channels x dimmsPerChannel).
 */
class AddressMap
{
  public:
    AddressMap(std::uint32_t channels, std::uint32_t dimms_per_channel,
               std::uint64_t interleave_bytes)
        : numChannels(channels),
          dimmsPerChannel(dimms_per_channel),
          interleaveBytes(interleave_bytes)
    {
        if (channels == 0 || dimms_per_channel == 0)
            sim::fatal("address map needs >=1 channel and DIMM");
        if (interleave_bytes < cacheLineBytes ||
            interleave_bytes % cacheLineBytes != 0) {
            sim::fatal("interleave granularity must be a multiple of ",
                       cacheLineBytes, "B");
        }
    }

    std::uint32_t channels() const { return numChannels; }
    std::uint32_t dimmsPer() const { return dimmsPerChannel; }
    std::uint64_t granularity() const { return interleaveBytes; }

    /** Map a region-relative address to its channel/DIMM location. */
    DimmLocation
    decode(Addr addr) const
    {
        std::uint64_t block = addr / interleaveBytes;
        std::uint64_t offset = addr % interleaveBytes;
        std::uint32_t units = numChannels * dimmsPerChannel;
        std::uint64_t unit = block % units;
        std::uint64_t unit_block = block / units;

        DimmLocation loc;
        loc.channel = static_cast<std::uint32_t>(unit % numChannels);
        loc.dimm = static_cast<std::uint32_t>(unit / numChannels);
        loc.localAddr = unit_block * interleaveBytes + offset;
        return loc;
    }

    /**
     * Bytes of [addr, addr+bytes) that land on a given DIMM. Used by
     * DMA sizing and by tests asserting tile containment.
     */
    std::uint64_t
    bytesOnDimm(Addr addr, std::uint64_t bytes, std::uint32_t channel,
                std::uint32_t dimm) const
    {
        std::uint64_t total = 0;
        Addr cur = addr;
        Addr end = addr + bytes;
        while (cur < end) {
            std::uint64_t in_block =
                interleaveBytes - (cur % interleaveBytes);
            std::uint64_t chunk = std::min<std::uint64_t>(in_block,
                                                          end - cur);
            DimmLocation loc = decode(cur);
            if (loc.channel == channel && loc.dimm == dimm)
                total += chunk;
            cur += chunk;
        }
        return total;
    }

  private:
    std::uint32_t numChannels;
    std::uint32_t dimmsPerChannel;
    std::uint64_t interleaveBytes;
};

} // namespace reach::mem

#endif // REACH_MEM_ADDRESS_MAP_HH
