#include "tlb.hh"

namespace reach::mem
{

Tlb::Tlb(sim::Simulator &sim, const std::string &name,
         const TlbConfig &config)
    : sim::SimObject(sim, name),
      cfg(config),
      statHits(name + ".hits", "TLB hits"),
      statMisses(name + ".misses", "TLB misses (page walks)")
{
    registerStat(statHits);
    registerStat(statMisses);
}

sim::Tick
Tlb::translate(Addr addr)
{
    std::uint64_t page = addr / cfg.pageBytes;

    auto it = where.find(page);
    if (it != where.end()) {
        ++statHits;
        lru.splice(lru.begin(), lru, it->second);
        return 0;
    }

    ++statMisses;
    if (lru.size() >= cfg.entries) {
        where.erase(lru.back());
        lru.pop_back();
    }
    lru.push_front(page);
    where[page] = lru.begin();
    return cfg.walkLatency;
}

void
Tlb::flush()
{
    lru.clear();
    where.clear();
}

} // namespace reach::mem
