/**
 * @file
 * DDR4 device timing and energy parameters.
 *
 * Defaults model a DDR4-2400 x8 DIMM (single rank, 16 banks). Energy
 * constants follow the structure of the Micron DDR4 power calculator:
 * per-activate, per-read/write-burst and background components.
 */

#ifndef REACH_MEM_DRAM_TIMINGS_HH
#define REACH_MEM_DRAM_TIMINGS_HH

#include <cstdint>

#include "sim/types.hh"

namespace reach::mem
{

/** All timing in ticks (ps); all energy in picojoules. */
struct DramTimings
{
    /** Clock period; DDR4-2400 runs a 1200 MHz bus clock. */
    sim::Tick tCK = 833;

    /** ACT to internal read/write delay. */
    sim::Tick tRCD = 13'320;       // 16 cycles
    /** Precharge latency. */
    sim::Tick tRP = 13'320;        // 16 cycles
    /** CAS latency. */
    sim::Tick tCL = 13'320;        // 16 cycles
    /** CAS write latency. */
    sim::Tick tCWL = 10'000;       // 12 cycles
    /** Burst of 8 transfers on a DDR bus: 4 clock periods. */
    sim::Tick tBL = 3'332;
    /** ACT to PRE minimum. */
    sim::Tick tRAS = 26'660;       // 32 cycles
    /** ACT-to-ACT, different banks, same rank. */
    sim::Tick tRRD = 4'165;        // ~5 cycles
    /** Four-activate window. */
    sim::Tick tFAW = 17'500;       // ~21 cycles
    /** Write recovery before precharge. */
    sim::Tick tWR = 12'500;
    /** Refresh interval and refresh cycle time. */
    sim::Tick tREFI = 7'800'000;   // 7.8 us
    sim::Tick tRFC = 350'000;      // 350 ns

    std::uint32_t banksPerRank = 16;
    std::uint32_t ranksPerDimm = 1;
    /** Row buffer (page) size per bank. */
    std::uint64_t rowBytes = 8192;
    /** DIMM capacity. */
    std::uint64_t capacityBytes = std::uint64_t(16) << 30;

    /** Energy per activate+precharge pair (pJ). */
    double actPreEnergyPj = 3200.0;
    /** Energy per 64B read burst (pJ). */
    double readBurstEnergyPj = 2100.0;
    /** Energy per 64B write burst (pJ). */
    double writeBurstEnergyPj = 2300.0;
    /** Background power per rank (W). */
    double backgroundPowerW = 0.65;

    /** Peak data-bus bandwidth in bytes/second. */
    double
    peakBandwidth() const
    {
        // 8 bytes per bus clock edge, two edges per cycle.
        return 16.0 / (static_cast<double>(tCK) * 1e-12);
    }
};

/** Timing mode for a bank after each column access. */
enum class RowPolicy
{
    /** Keep the row open; later hits pay only CAS latency. */
    Open,
    /**
     * Precharge immediately after the access. AIM modules run this
     * policy so a DIMM can be handed back to the host memory
     * controller with every row closed (paper §II-B).
     */
    Closed,
};

} // namespace reach::mem

#endif // REACH_MEM_DRAM_TIMINGS_HH
