#include "cache.hh"

#include <memory>

#include "sim/logging.hh"

namespace reach::mem
{

Cache::Cache(sim::Simulator &sim, const std::string &name,
             MemorySystem &backing_mem, const CacheConfig &config)
    : sim::SimObject(sim, name),
      backing(backing_mem),
      cfg(config),
      setsCount(static_cast<std::uint32_t>(
          cfg.sizeBytes / (cacheLineBytes * cfg.associativity))),
      statHits(name + ".hits", "cache hits"),
      statMisses(name + ".misses", "cache misses"),
      statWritebacks(name + ".writebacks", "dirty evictions"),
      statFlushedLines(name + ".flushedLines",
                       "lines written back by explicit flush"),
      statPrefetches(name + ".prefetches",
                     "next-line prefetches issued")
{
    if (setsCount == 0)
        sim::fatal(name, ": size too small for associativity");
    sets.assign(setsCount, Set{std::vector<Line>(cfg.associativity)});
    registerStat(statHits);
    registerStat(statMisses);
    registerStat(statWritebacks);
    registerStat(statFlushedLines);
    registerStat(statPrefetches);
}

std::uint32_t
Cache::setIndex(Addr line_addr) const
{
    return static_cast<std::uint32_t>((line_addr / cacheLineBytes) %
                                      setsCount);
}

Cache::Line *
Cache::lookup(Addr line_addr)
{
    Set &set = sets[setIndex(line_addr)];
    for (auto &line : set.ways) {
        if (line.valid && line.tag == line_addr)
            return &line;
    }
    return nullptr;
}

Cache::Line &
Cache::victimIn(Set &set)
{
    Line *victim = &set.ways.front();
    for (auto &line : set.ways) {
        if (!line.valid)
            return line;
        if (line.lastUse < victim->lastUse)
            victim = &line;
    }
    return *victim;
}

void
Cache::access(Addr addr, bool write, Requester source,
              std::function<void(sim::Tick)> on_done)
{
    Addr line_addr = lineAlign(addr);

    // A line whose fill is still in flight must coalesce with that
    // fill, not report a (wrongly timed) hit.
    if (pendingFills.count(line_addr)) {
        ++statMisses;
        handleMiss(line_addr, write, source, std::move(on_done));
        return;
    }

    if (Line *line = lookup(line_addr)) {
        ++statHits;
        line->lastUse = ++useStamp;
        line->dirty = line->dirty || write;
        scheduleIn(cfg.hitLatency,
                   [this, on_done] { if (on_done) on_done(now()); },
                   sim::EventPriority::Default, "hitDone");
        // Streaming prefetch: keep one line ahead even on hits, so a
        // sequential stream takes exactly one demand miss.
        if (cfg.prefetchNextLine)
            prefetchLine(line_addr + cacheLineBytes, source);
        return;
    }

    ++statMisses;
    handleMiss(line_addr, write, source, std::move(on_done));

    if (cfg.prefetchNextLine)
        prefetchLine(line_addr + cacheLineBytes, source);
}

void
Cache::prefetchLine(Addr line_addr, Requester source)
{
    // Never prefetch across the end of the backing address space.
    if (!backing.contains(line_addr))
        return;
    if (lookup(line_addr) || pendingFills.count(line_addr))
        return;
    ++statPrefetches;
    handleMiss(line_addr, false, source, nullptr);
}

void
Cache::handleMiss(Addr line_addr, bool write, Requester source,
                  std::function<void(sim::Tick)> on_done)
{
    auto it = pendingFills.find(line_addr);
    if (it != pendingFills.end()) {
        // Coalesce with the in-flight fill.
        it->second.write = it->second.write || write;
        if (on_done)
            it->second.waiters.push_back(std::move(on_done));
        return;
    }

    PendingFill fill;
    fill.write = write;
    if (on_done)
        fill.waiters.push_back(std::move(on_done));
    pendingFills.emplace(line_addr, std::move(fill));

    // Allocate now; evict a victim (writeback if dirty) and fetch.
    Set &set = sets[setIndex(line_addr)];
    Line &victim = victimIn(set);
    if (victim.valid && victim.dirty) {
        ++statWritebacks;
        MemRequest wb;
        wb.addr = victim.tag;
        wb.write = true;
        wb.source = source;
        // Posted writeback: no completion dependency.
        backing.accessRange(victim.tag, cacheLineBytes, true, source,
                            nullptr);
    }
    victim.valid = true;
    victim.dirty = false;
    victim.tag = line_addr;
    victim.lastUse = ++useStamp;

    backing.accessRange(
        line_addr, cacheLineBytes, false, source,
        [this, line_addr](sim::Tick t) {
            auto fit = pendingFills.find(line_addr);
            if (fit == pendingFills.end())
                sim::panic(name(), ": fill completed with no record");
            PendingFill done = std::move(fit->second);
            pendingFills.erase(fit);

            if (Line *line = lookup(line_addr))
                line->dirty = line->dirty || done.write;
            for (auto &waiter : done.waiters)
                waiter(t + cfg.hitLatency);
        });
}

std::uint64_t
Cache::flushRange(Addr addr, std::uint64_t bytes,
                  std::function<void(sim::Tick)> on_done)
{
    Addr first = lineAlign(addr);
    Addr last = bytes ? lineAlign(addr + bytes - 1) : first;

    // Collect dirty lines in range, invalidate all cached lines.
    std::vector<Addr> dirty_lines;
    for (auto &set : sets) {
        for (auto &line : set.ways) {
            if (!line.valid || line.tag < first || line.tag > last)
                continue;
            if (line.dirty)
                dirty_lines.push_back(line.tag);
            line.valid = false;
            line.dirty = false;
        }
    }

    statFlushedLines += static_cast<double>(dirty_lines.size());

    if (dirty_lines.empty()) {
        if (on_done) {
            scheduleIn(cfg.hitLatency,
                       [this, on_done] { on_done(now()); },
                       sim::EventPriority::Default, "flushNop");
        }
        return 0;
    }

    auto remaining = std::make_shared<std::uint64_t>(dirty_lines.size());
    auto done_cb = std::make_shared<std::function<void(sim::Tick)>>(
        std::move(on_done));
    for (Addr line : dirty_lines) {
        backing.accessRange(line, cacheLineBytes, true, Requester::Gam,
                            [remaining, done_cb](sim::Tick t) {
                                if (--*remaining == 0 && *done_cb)
                                    (*done_cb)(t);
                            });
    }
    return dirty_lines.size();
}

} // namespace reach::mem
