#include "mem_controller.hh"

#include <algorithm>

#include "sim/debug.hh"
#include "sim/logging.hh"

namespace reach::mem
{

MemController::MemController(sim::Simulator &sim, const std::string &name,
                             std::vector<Dimm *> dimm_list,
                             const MemCtrlConfig &config)
    : sim::SimObject(sim, name),
      dimms(std::move(dimm_list)),
      cfg(config),
      statReads(name + ".reads", "read bursts issued"),
      statWrites(name + ".writes", "write bursts issued"),
      statBusBytes(name + ".busBytes", "bytes over the channel bus"),
      statReadLatency(name + ".readLatency",
                      "read latency, enqueue to data (ticks)"),
      statQueueDepth(name + ".queueDepth",
                     "occupancy sampled at enqueue")
{
    if (dimms.empty())
        sim::fatal(name, ": controller needs at least one DIMM");
    registerStat(statReads);
    registerStat(statWrites);
    registerStat(statBusBytes);
    registerStat(statReadLatency);
    registerStat(statQueueDepth);
}

bool
MemController::canAcceptRead() const
{
    return readQ.size() < cfg.readQueueEntries;
}

bool
MemController::canAcceptWrite() const
{
    return writeQ.size() < cfg.writeQueueEntries;
}

bool
MemController::enqueue(std::uint32_t dimm, const MemRequest &req)
{
    if (dimm >= dimms.size())
        sim::panic(name(), ": request to DIMM ", dimm, " out of range");
    if (dimms[dimm]->isAccOwned()) {
        sim::panic(name(), ": host access to DIMM ", dimm,
                   " while owned by its AIM module");
    }

    auto &q = req.write ? writeQ : readQ;
    std::uint32_t limit =
        req.write ? cfg.writeQueueEntries : cfg.readQueueEntries;
    if (q.size() >= limit)
        return false;

    q.push_back(QueuedReq{dimm, req, now()});
    statQueueDepth.sample(
        static_cast<double>(readQ.size() + writeQ.size()));
    wake();
    return true;
}

void
MemController::wake()
{
    if (schedulerArmed)
        return;
    schedulerArmed = true;
    // The frontend decode latency applies to a newly arrived request;
    // the scheduler itself re-arms at data-bus rate (see issue()), so
    // back-to-back bursts pipeline at full channel bandwidth.
    sim::Tick when = std::max(now() + cfg.frontendLatency, busFreeAt);
    schedule(when, [this] {
        schedulerArmed = false;
        trySchedule();
    }, sim::EventPriority::Default, "schedule");
}

std::size_t
MemController::pickFrFcfs(const std::deque<QueuedReq> &q) const
{
    // First ready (open-row hit on a ready bank) in arrival order;
    // otherwise the oldest request.
    std::size_t oldest_ready = npos;
    for (std::size_t i = 0; i < q.size(); ++i) {
        const auto &qr = q[i];
        const Dimm &d = *dimms[qr.dimm];
        if (d.isAccOwned())
            continue;
        if (d.wouldRowHit(qr.req.addr) &&
            d.bankReadyAt(qr.req.addr) <= now()) {
            return i;
        }
        if (oldest_ready == npos)
            oldest_ready = i;
    }
    return oldest_ready;
}

void
MemController::trySchedule()
{
    if (readQ.empty() && writeQ.empty())
        return;

    // Write drain hysteresis.
    if (writeQ.size() >= cfg.writeHighWatermark)
        drainingWrites = true;
    if (writeQ.size() <= cfg.writeLowWatermark)
        drainingWrites = false;

    bool take_write = !writeQ.empty() && (readQ.empty() || drainingWrites);
    auto &q = take_write ? writeQ : readQ;

    std::size_t idx = pickFrFcfs(q);
    if (idx == npos) {
        // Everything targets handed-over DIMMs; retry when something
        // changes (a conservative periodic poll keeps it simple).
        schedulerArmed = true;
        scheduleIn(sim::tickPerUs, [this] {
            schedulerArmed = false;
            trySchedule();
        }, sim::EventPriority::Default, "retry");
        return;
    }

    QueuedReq qr = std::move(q[idx]);
    q.erase(q.begin() + static_cast<std::ptrdiff_t>(idx));
    issue(std::move(qr));

    if (!readQ.empty() || !writeQ.empty()) {
        // Re-arm when the data bus frees up, so issue rate tracks the
        // channel's burst rate rather than the frontend latency.
        schedulerArmed = true;
        schedule(std::max(busFreeAt, now() + 1), [this] {
            schedulerArmed = false;
            trySchedule();
        }, sim::EventPriority::Default, "rearm");
    }
}

void
MemController::issue(QueuedReq &&qr)
{
    Dimm &d = *dimms[qr.dimm];
    sim::Tick start = std::max(now(), busFreeAt);
    BurstResult br = d.serviceBurst(qr.req.addr, qr.req.write, start,
                                    policy);

    // Only the data transfer (tBL) occupies the shared channel bus;
    // CAS latency pipelines across back-to-back bursts.
    busFreeAt = br.issue + d.timings().tBL;
    statBusBytes += static_cast<double>(cacheLineBytes);

    if (qr.req.write)
        ++statWrites;
    else
        ++statReads;

    sim::Tick arrival = qr.arrival;
    auto cb = qr.req.onComplete;
    bool is_write = qr.req.write;
    schedule(br.complete, [this, cb, arrival, is_write] {
        if (!is_write)
            statReadLatency.sample(static_cast<double>(now() - arrival));
        if (cb)
            cb(now());
    }, sim::EventPriority::Default, "complete");
}

} // namespace reach::mem
