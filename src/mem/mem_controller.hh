/**
 * @file
 * A per-channel memory controller with FR-FCFS scheduling.
 *
 * Matches the paper's setup (Table II): 64-entry read and 64-entry
 * write request queues, first-ready first-come-first-served ordering.
 * The channel data bus is shared by all DIMMs behind the controller;
 * one 64B burst occupies the bus for tBL.
 */

#ifndef REACH_MEM_MEM_CONTROLLER_HH
#define REACH_MEM_MEM_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "mem/dimm.hh"
#include "mem/packet.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace reach::mem
{

/** Controller configuration. */
struct MemCtrlConfig
{
    std::uint32_t readQueueEntries = 64;
    std::uint32_t writeQueueEntries = 64;
    /** Start draining writes when the queue is this full. */
    std::uint32_t writeHighWatermark = 48;
    /** Keep draining until the queue is this empty. */
    std::uint32_t writeLowWatermark = 16;
    /** Controller pipeline (decode/queue) latency per request. */
    sim::Tick frontendLatency = 10'000; // 10 ns
};

class MemController : public sim::SimObject
{
  public:
    /**
     * @param dimms Non-owning; the channel's DIMMs in slot order.
     */
    MemController(sim::Simulator &sim, const std::string &name,
                  std::vector<Dimm *> dimms,
                  const MemCtrlConfig &cfg = {});

    /**
     * Enqueue one line-sized request targeting @p dimm at
     * DIMM-local address req.addr.
     *
     * @retval false if the corresponding queue is full; the caller
     *         must retry later (ports apply backpressure).
     */
    bool enqueue(std::uint32_t dimm, const MemRequest &req);

    /** True if a read (write) can currently be accepted. */
    bool canAcceptRead() const;
    bool canAcceptWrite() const;

    std::uint32_t numDimms() const
    {
        return static_cast<std::uint32_t>(dimms.size());
    }

    Dimm &dimm(std::uint32_t idx) { return *dimms.at(idx); }

    /** Outstanding (queued, unissued) request count. */
    std::size_t pending() const { return readQ.size() + writeQ.size(); }

    /** Row policy used for host-side accesses (default Open). */
    void setRowPolicy(RowPolicy p) { policy = p; }

    /** Total bytes moved over this channel's data bus. */
    std::uint64_t bytesTransferred() const
    {
        return static_cast<std::uint64_t>(statBusBytes.value());
    }

  private:
    struct QueuedReq
    {
        std::uint32_t dimm;
        MemRequest req;
        sim::Tick arrival;
    };

    /** Kick the scheduler if it is not already pending. */
    void wake();

    /** Issue at most one burst, then re-arm. */
    void trySchedule();

    /** FR-FCFS pick from @p q; returns index or npos. */
    std::size_t pickFrFcfs(const std::deque<QueuedReq> &q) const;

    void issue(QueuedReq &&qr);

    static constexpr std::size_t npos = ~std::size_t(0);

    std::vector<Dimm *> dimms;
    MemCtrlConfig cfg;
    RowPolicy policy = RowPolicy::Open;

    std::deque<QueuedReq> readQ;
    std::deque<QueuedReq> writeQ;
    bool drainingWrites = false;
    bool schedulerArmed = false;
    /** Channel data bus is busy until this tick. */
    sim::Tick busFreeAt = 0;

    sim::Scalar statReads;
    sim::Scalar statWrites;
    sim::Scalar statBusBytes;
    sim::Distribution statReadLatency;
    sim::Distribution statQueueDepth;
};

} // namespace reach::mem

#endif // REACH_MEM_MEM_CONTROLLER_HH
