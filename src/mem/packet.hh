/**
 * @file
 * Memory request/response types shared by caches, controllers, DIMMs
 * and accelerator ports.
 *
 * The simulator is timing-directed: packets carry addresses and sizes
 * but no data payload. Functional data (feature vectors, CNN weights)
 * lives in the application layer; the memory system models *when*
 * accesses complete and *how much* traffic they generate.
 */

#ifndef REACH_MEM_PACKET_HH
#define REACH_MEM_PACKET_HH

#include <cstdint>
#include <functional>

#include "sim/types.hh"

namespace reach::mem
{

/** Physical address type. */
using Addr = std::uint64_t;

/** Width of a DRAM burst / cache line in bytes. */
constexpr std::uint64_t cacheLineBytes = 64;

/** Align @p addr down to a cache-line boundary. */
constexpr Addr
lineAlign(Addr addr)
{
    return addr & ~(cacheLineBytes - 1);
}

/** Number of cache lines covering [addr, addr+bytes). */
constexpr std::uint64_t
linesCovering(Addr addr, std::uint64_t bytes)
{
    if (bytes == 0)
        return 0;
    Addr first = lineAlign(addr);
    Addr last = lineAlign(addr + bytes - 1);
    return (last - first) / cacheLineBytes + 1;
}

/** Who generated a memory access; used for stats and arbitration. */
enum class Requester : std::uint8_t
{
    Cpu,
    OnChipAcc,
    NearMemAcc,
    NearStorAcc,
    Dma,
    Gam,
};

/** A single line-sized memory access. */
struct MemRequest
{
    Addr addr = 0;
    bool write = false;
    Requester source = Requester::Cpu;
    /** Invoked when the access completes (at the completion tick). */
    std::function<void(sim::Tick)> onComplete;
};

} // namespace reach::mem

#endif // REACH_MEM_PACKET_HH
