#include "memory_system.hh"

#include <algorithm>
#include <memory>

#include "sim/logging.hh"

namespace reach::mem
{

MemorySystem::MemorySystem(sim::Simulator &sim, const std::string &name,
                           const MemorySystemConfig &config)
    : sim::SimObject(sim, name), cfg(config)
{
    localTop.assign(cfg.numChannels,
                    std::vector<Addr>(cfg.dimmsPerChannel, 0));

    for (std::uint32_t ch = 0; ch < cfg.numChannels; ++ch) {
        std::vector<Dimm *> channel_dimms;
        for (std::uint32_t d = 0; d < cfg.dimmsPerChannel; ++d) {
            auto dimm = std::make_unique<Dimm>(
                sim,
                name + ".ch" + std::to_string(ch) + ".dimm" +
                    std::to_string(d),
                cfg.dimmTimings);
            channel_dimms.push_back(dimm.get());
            dimms.push_back(std::move(dimm));
        }
        ctrls.push_back(std::make_unique<MemController>(
            sim, name + ".mc" + std::to_string(ch), channel_dimms,
            cfg.ctrlConfig));
    }
}

Addr
MemorySystem::addRegion(const std::string &region_name, std::uint64_t size,
                        std::vector<DimmRef> units,
                        std::uint64_t interleave_bytes)
{
    if (units.empty())
        sim::fatal("region '", region_name, "' has no DIMMs");
    if (size == 0)
        sim::fatal("region '", region_name, "' has zero size");
    for (const auto &u : units) {
        if (u.channel >= cfg.numChannels ||
            u.dimm >= cfg.dimmsPerChannel) {
            sim::fatal("region '", region_name,
                       "' references a DIMM out of range");
        }
    }

    Region region;
    region.name = region_name;
    region.base = nextBase;
    region.size = size;
    region.units = std::move(units);
    region.interleave = interleave_bytes;

    // Reserve DIMM-local space: each unit holds ceil(blocks/units)
    // interleave blocks.
    std::uint64_t blocks =
        (size + interleave_bytes - 1) / interleave_bytes;
    std::uint64_t per_unit_blocks =
        (blocks + region.units.size() - 1) / region.units.size();
    std::uint64_t per_unit_bytes = per_unit_blocks * interleave_bytes;

    for (const auto &u : region.units) {
        Addr &top = localTop[u.channel][u.dimm];
        if (top + per_unit_bytes >
            cfg.dimmTimings.capacityBytes) {
            sim::fatal("region '", region_name, "' exceeds capacity of ",
                       "ch", u.channel, ".dimm", u.dimm);
        }
        region.localBase.push_back(top);
        top += per_unit_bytes;
    }

    nextBase += size;
    // Keep regions line-aligned relative to each other.
    nextBase = (nextBase + cacheLineBytes - 1) & ~(cacheLineBytes - 1);

    regions.push_back(std::move(region));
    return regions.back().base;
}

const MemorySystem::Region &
MemorySystem::regionFor(Addr addr) const
{
    for (const auto &r : regions) {
        if (addr >= r.base && addr < r.base + r.size)
            return r;
    }
    sim::panic(name(), ": address ", addr, " falls in no region");
}

MemorySystem::Target
MemorySystem::resolve(Addr addr) const
{
    const Region &r = regionFor(addr);
    Addr offset = addr - r.base;
    std::uint64_t block = offset / r.interleave;
    std::uint64_t in_block = offset % r.interleave;
    std::size_t unit = block % r.units.size();
    std::uint64_t unit_block = block / r.units.size();

    Target t;
    t.ref = r.units[unit];
    t.localAddr =
        r.localBase[unit] + unit_block * r.interleave + in_block;
    return t;
}

DimmRef
MemorySystem::locate(Addr addr) const
{
    return resolve(addr).ref;
}

bool
MemorySystem::contains(Addr addr) const
{
    for (const auto &r : regions) {
        if (addr >= r.base && addr < r.base + r.size)
            return true;
    }
    return false;
}

bool
MemorySystem::access(const MemRequest &req)
{
    Target t = resolve(req.addr);
    MemRequest local = req;
    local.addr = t.localAddr;
    return ctrls[t.ref.channel]->enqueue(t.ref.dimm, local);
}

void
MemorySystem::accessRange(Addr addr, std::uint64_t bytes, bool write,
                          Requester source,
                          std::function<void(sim::Tick)> on_done)
{
    if (bytes == 0) {
        if (on_done)
            on_done(now());
        return;
    }

    // Shared issue state across retries/completions.
    struct RangeState
    {
        Addr next;
        Addr end;
        std::uint64_t outstanding = 0;
        bool all_issued = false;
        std::function<void(sim::Tick)> done;
    };
    auto st = std::make_shared<RangeState>();
    st->next = lineAlign(addr);
    st->end = addr + bytes;
    st->done = std::move(on_done);

    // Issue as many lines as the controllers accept, then retry on a
    // short backoff. Completion of the last line fires on_done. The
    // function captures itself weakly — a retry event holds the only
    // strong reference, so finished pumps are actually freed.
    auto pump = std::make_shared<std::function<void()>>();
    std::weak_ptr<std::function<void()>> weak_pump = pump;
    *pump = [this, st, write, source, weak_pump]() {
        while (st->next < st->end) {
            MemRequest req;
            req.addr = st->next;
            req.write = write;
            req.source = source;
            req.onComplete = [st](sim::Tick t) {
                --st->outstanding;
                if (st->all_issued && st->outstanding == 0 && st->done)
                    st->done(t);
            };
            if (!access(req)) {
                // Backpressure: retry after roughly one burst time.
                scheduleIn(cfg.dimmTimings.tBL * 4,
                           [p = weak_pump.lock()] { (*p)(); },
                           sim::EventPriority::Default, "rangeRetry");
                return;
            }
            ++st->outstanding;
            st->next += cacheLineBytes;
        }
        st->all_issued = true;
        if (st->outstanding == 0 && st->done)
            st->done(now());
    };
    (*pump)();
}

double
MemorySystem::dramDynamicEnergyPj() const
{
    double total = 0;
    for (const auto &d : dimms)
        total += d->dynamicEnergyPj();
    return total;
}

} // namespace reach::mem
