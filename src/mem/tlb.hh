/**
 * @file
 * A TLB model for the coherent on-chip accelerator (paper §II-A:
 * "virtual memory capabilities are supported by implementing TLBs and
 * page table walkers for the accelerator").
 *
 * The model charges a fixed page-walk latency on a miss and tracks
 * hit/miss statistics. Translation itself is identity (the simulator
 * uses physical addresses); only the *timing* of translation matters.
 */

#ifndef REACH_MEM_TLB_HH
#define REACH_MEM_TLB_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "mem/packet.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace reach::mem
{

struct TlbConfig
{
    std::uint32_t entries = 64;
    std::uint64_t pageBytes = 4096;
    /** Latency of a page-table walk (multi-level memory accesses). */
    sim::Tick walkLatency = 200'000; // 200 ns
};

class Tlb : public sim::SimObject
{
  public:
    Tlb(sim::Simulator &sim, const std::string &name,
        const TlbConfig &cfg = {});

    /**
     * Translate @p addr; returns the extra latency this access pays
     * (0 on a hit, the walk latency on a miss).
     */
    sim::Tick translate(Addr addr);

    void flush();

    std::uint64_t hitCount() const
    {
        return static_cast<std::uint64_t>(statHits.value());
    }
    std::uint64_t missCount() const
    {
        return static_cast<std::uint64_t>(statMisses.value());
    }

  private:
    TlbConfig cfg;
    /** LRU list of resident page numbers, most recent at front. */
    std::list<std::uint64_t> lru;
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
        where;

    sim::Scalar statHits;
    sim::Scalar statMisses;
};

} // namespace reach::mem

#endif // REACH_MEM_TLB_HH
