#include "dimm.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace reach::mem
{

Dimm::Dimm(sim::Simulator &sim, const std::string &name,
           const DramTimings &timings)
    : sim::SimObject(sim, name),
      spec(timings),
      banks(timings.banksPerRank * timings.ranksPerDimm),
      statReads(name + ".readBursts", "64B read bursts serviced"),
      statWrites(name + ".writeBursts", "64B write bursts serviced"),
      statActivates(name + ".activates", "row activations"),
      statRowHits(name + ".rowHits", "bursts that hit an open row")
{
    if (spec.rowBytes == 0 || spec.rowBytes % cacheLineBytes != 0)
        sim::fatal("DIMM row size must be a multiple of the line size");
    registerStat(statReads);
    registerStat(statWrites);
    registerStat(statActivates);
    registerStat(statRowHits);
}

std::uint32_t
Dimm::bankIndex(Addr addr) const
{
    // Rows are contiguous; consecutive rows rotate across banks so
    // streaming accesses overlap activates in different banks.
    return static_cast<std::uint32_t>((addr / spec.rowBytes) %
                                      banks.size());
}

std::uint64_t
Dimm::rowIndex(Addr addr) const
{
    return (addr / spec.rowBytes) / banks.size();
}

sim::Tick
Dimm::adjustForRefresh(sim::Tick t) const
{
    // Refresh k occupies [k*tREFI, k*tREFI + tRFC) for k >= 1; the
    // device comes out of initialization fully refreshed, so there is
    // no blackout at time zero.
    sim::Tick window = t / spec.tREFI;
    if (window == 0)
        return t;
    sim::Tick refresh_start = window * spec.tREFI;
    if (t < refresh_start + spec.tRFC)
        return refresh_start + spec.tRFC;
    return t;
}

sim::Tick
Dimm::earliestActivate(sim::Tick t) const
{
    if (!actHistory.empty())
        t = std::max(t, lastActTime + spec.tRRD);
    if (actHistory.size() >= 4)
        t = std::max(t, actHistory.front() + spec.tFAW);
    return t;
}

void
Dimm::recordActivate(sim::Tick t)
{
    lastActTime = t;
    actHistory.push_back(t);
    while (actHistory.size() > 4)
        actHistory.pop_front();
    ++statActivates;
}

bool
Dimm::wouldRowHit(Addr addr) const
{
    const Bank &bank = banks[bankIndex(addr)];
    return bank.openRow && *bank.openRow == rowIndex(addr);
}

sim::Tick
Dimm::bankReadyAt(Addr addr) const
{
    return banks[bankIndex(addr)].readyAt;
}

bool
Dimm::allRowsClosed() const
{
    return std::all_of(banks.begin(), banks.end(),
                       [](const Bank &b) { return !b.openRow; });
}

sim::Tick
Dimm::prechargeAll(sim::Tick at)
{
    sim::Tick done = at;
    for (auto &bank : banks) {
        if (!bank.openRow)
            continue;
        sim::Tick pre = std::max({at, bank.readyAt,
                                  bank.lastAct + spec.tRAS});
        bank.openRow.reset();
        bank.readyAt = pre + spec.tRP;
        done = std::max(done, bank.readyAt);
    }
    return done;
}

BurstResult
Dimm::serviceBurst(Addr addr, bool write, sim::Tick at, RowPolicy policy)
{
    if (addr + cacheLineBytes > spec.capacityBytes)
        sim::panic(name(), ": burst beyond DIMM capacity, addr=", addr);

    Bank &bank = banks[bankIndex(addr)];
    std::uint64_t row = rowIndex(addr);

    BurstResult res;
    sim::Tick t = adjustForRefresh(std::max(at, bank.readyAt));

    res.rowHit = bank.openRow && *bank.openRow == row;
    if (!res.rowHit) {
        if (bank.openRow) {
            // Row conflict: precharge first, honoring tRAS.
            sim::Tick pre = std::max(t, bank.lastAct + spec.tRAS);
            t = pre + spec.tRP;
        }
        t = earliestActivate(adjustForRefresh(t));
        recordActivate(t);
        bank.lastAct = t;
        bank.openRow = row;
        t += spec.tRCD;
        res.activated = true;
    } else {
        ++statRowHits;
    }

    res.issue = t;
    sim::Tick cas = write ? spec.tCWL : spec.tCL;
    res.complete = t + cas + spec.tBL;

    if (policy == RowPolicy::Closed) {
        sim::Tick pre = std::max(res.complete, bank.lastAct + spec.tRAS);
        if (write)
            pre = std::max(pre, res.complete + spec.tWR);
        bank.openRow.reset();
        bank.readyAt = pre + spec.tRP;
    } else {
        // Open policy: next column command may overlap data transfer
        // of this one; the caller's bus model provides serialization.
        bank.readyAt = res.issue + spec.tBL;
        if (write)
            bank.readyAt = std::max(bank.readyAt, res.complete + spec.tWR);
    }

    if (write)
        ++statWrites;
    else
        ++statReads;
    return res;
}

double
Dimm::dynamicEnergyPj() const
{
    return statActivates.value() * spec.actPreEnergyPj +
           statReads.value() * spec.readBurstEnergyPj +
           statWrites.value() * spec.writeBurstEnergyPj;
}

} // namespace reach::mem
