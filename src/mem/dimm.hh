/**
 * @file
 * A DRAM DIMM with per-bank state machines.
 *
 * The DIMM is a passive timing model: callers (the channel memory
 * controller, or an AIM module's local port) ask it to service one
 * 64-byte burst no earlier than a given tick and get back the issue
 * and completion times. Bank conflicts, activate windows (tRRD/tFAW),
 * write recovery, refresh blackouts and the row policy are all
 * resolved here; data-bus serialization belongs to the caller because
 * host channels and AIM local ports have different buses.
 */

#ifndef REACH_MEM_DIMM_HH
#define REACH_MEM_DIMM_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "mem/dram_timings.hh"
#include "mem/packet.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace reach::mem
{

/** Timing outcome of one 64B burst. */
struct BurstResult
{
    /** When the column command effectively issued. */
    sim::Tick issue = 0;
    /** When the last data beat left (or reached) the DIMM pins. */
    sim::Tick complete = 0;
    bool rowHit = false;
    /** Whether an ACT (and possibly PRE) was needed. */
    bool activated = false;
};

class Dimm : public sim::SimObject
{
  public:
    Dimm(sim::Simulator &sim, const std::string &name,
         const DramTimings &timings);

    const DramTimings &timings() const { return spec; }

    /**
     * Service one 64B burst at local address @p addr.
     *
     * @param addr   DIMM-local physical address.
     * @param write  True for a write burst.
     * @param at     Earliest tick the command may be considered.
     * @param policy Row policy applied after the access.
     */
    BurstResult serviceBurst(Addr addr, bool write, sim::Tick at,
                             RowPolicy policy);

    /**
     * Would a burst to @p addr hit an open row right now? Used by
     * FR-FCFS schedulers to prefer row hits without mutating state.
     */
    bool wouldRowHit(Addr addr) const;

    /** Earliest tick the addressed bank can accept a new command. */
    sim::Tick bankReadyAt(Addr addr) const;

    /** True when every bank is precharged (AIM handover invariant). */
    bool allRowsClosed() const;

    /** Close every open row, no earlier than @p at; returns done tick. */
    sim::Tick prechargeAll(sim::Tick at);

    /**
     * Ownership handover (paper §II-B): while owned by an AIM module
     * the host memory controller must not touch this DIMM.
     */
    void setAccOwned(bool owned) { accOwned = owned; }
    bool isAccOwned() const { return accOwned; }

    /** Dynamic DRAM energy consumed so far (picojoules). */
    double dynamicEnergyPj() const;

    /** Decode helpers exposed for tests. */
    std::uint32_t bankIndex(Addr addr) const;
    std::uint64_t rowIndex(Addr addr) const;

  private:
    struct Bank
    {
        std::optional<std::uint64_t> openRow;
        /** Earliest tick a new command may target this bank. */
        sim::Tick readyAt = 0;
        /** Time of the most recent ACT (for tRAS). */
        sim::Tick lastAct = 0;
    };

    /** Delay @p t out of any refresh blackout window. */
    sim::Tick adjustForRefresh(sim::Tick t) const;

    /** Earliest ACT time honoring tRRD and tFAW. */
    sim::Tick earliestActivate(sim::Tick t) const;

    void recordActivate(sim::Tick t);

    DramTimings spec;
    std::vector<Bank> banks;
    /** Recent ACT times across the rank (tFAW window). */
    std::deque<sim::Tick> actHistory;
    sim::Tick lastActTime = 0;
    bool accOwned = false;

    sim::Scalar statReads;
    sim::Scalar statWrites;
    sim::Scalar statActivates;
    sim::Scalar statRowHits;
};

} // namespace reach::mem

#endif // REACH_MEM_DIMM_HH
