/**
 * @file
 * A set-associative writeback cache used as the shared last-level
 * cache in front of the host memory region.
 *
 * The CPU and the coherent on-chip accelerator access memory through
 * this cache. The GAM can force writebacks of an address range before
 * handing data to near-memory or near-storage accelerators (paper
 * §II-D / §III-B).
 */

#ifndef REACH_MEM_CACHE_HH
#define REACH_MEM_CACHE_HH

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "mem/memory_system.hh"
#include "mem/packet.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace reach::mem
{

struct CacheConfig
{
    std::uint64_t sizeBytes = std::uint64_t(2) << 20; // 2 MiB shared L2
    std::uint32_t associativity = 16;
    /** Hit latency (tag + data). */
    sim::Tick hitLatency = 10'000; // 10 ns
    /** Energy per access (tag+data), picojoules; CACTI-style. */
    double accessEnergyPj = 250.0;
    /** Streaming prefetch: fetch line+1 on every access. */
    bool prefetchNextLine = false;
};

class Cache : public sim::SimObject
{
  public:
    Cache(sim::Simulator &sim, const std::string &name,
          MemorySystem &backing, const CacheConfig &cfg = {});

    /**
     * Access one cache line.
     *
     * @param addr     Physical address (any alignment; the containing
     *                 line is accessed).
     * @param write    Marks the line dirty on hit/fill.
     * @param source   Requester for stats.
     * @param on_done  Completion callback.
     */
    void access(Addr addr, bool write, Requester source,
                std::function<void(sim::Tick)> on_done);

    /**
     * Write back (and invalidate) every dirty line in the range.
     * @param on_done Called when all writebacks have reached DRAM.
     * @return number of lines written back.
     */
    std::uint64_t flushRange(Addr addr, std::uint64_t bytes,
                             std::function<void(sim::Tick)> on_done);

    std::uint64_t hits() const
    {
        return static_cast<std::uint64_t>(statHits.value());
    }
    std::uint64_t misses() const
    {
        return static_cast<std::uint64_t>(statMisses.value());
    }
    std::uint64_t prefetches() const
    {
        return static_cast<std::uint64_t>(statPrefetches.value());
    }

    /** Dynamic cache energy so far (picojoules). */
    double dynamicEnergyPj() const
    {
        return (statHits.value() + statMisses.value()) *
               cfg.accessEnergyPj;
    }

    std::uint32_t numSets() const { return setsCount; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        /** LRU stamp: larger is more recent. */
        std::uint64_t lastUse = 0;
    };

    struct Set
    {
        std::vector<Line> ways;
    };

    std::uint32_t setIndex(Addr line_addr) const;
    Line *lookup(Addr line_addr);
    /** Choose a victim way in the set (LRU; invalid first). */
    Line &victimIn(Set &set);

    void handleMiss(Addr line_addr, bool write, Requester source,
                    std::function<void(sim::Tick)> on_done);

    /** Allocate and fill @p line_addr with no waiters. */
    void prefetchLine(Addr line_addr, Requester source);

    MemorySystem &backing;
    CacheConfig cfg;
    std::uint32_t setsCount;
    std::vector<Set> sets;
    std::uint64_t useStamp = 0;

    /** Outstanding fills, keyed by line address: waiters coalesce. */
    struct PendingFill
    {
        bool write = false;
        std::vector<std::function<void(sim::Tick)>> waiters;
    };
    std::unordered_map<Addr, PendingFill> pendingFills;

    sim::Scalar statHits;
    sim::Scalar statMisses;
    sim::Scalar statWritebacks;
    sim::Scalar statFlushedLines;
    sim::Scalar statPrefetches;
};

} // namespace reach::mem

#endif // REACH_MEM_CACHE_HH
