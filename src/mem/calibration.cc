#include "calibration.hh"

#include "mem/memory_system.hh"
#include "sim/simulator.hh"

namespace reach::mem
{

StreamCalibration
measureStreamingBandwidth(const DramTimings &timings,
                          std::uint32_t channels,
                          std::uint32_t dimms_per_channel,
                          std::uint64_t bytes,
                          std::uint64_t interleave_bytes)
{
    sim::Simulator sim;
    MemorySystemConfig cfg;
    cfg.numChannels = channels;
    cfg.dimmsPerChannel = dimms_per_channel;
    cfg.dimmTimings = timings;

    MemorySystem mem(sim, "calib", cfg);

    std::vector<DimmRef> units;
    for (std::uint32_t c = 0; c < channels; ++c)
        for (std::uint32_t d = 0; d < dimms_per_channel; ++d)
            units.push_back({c, d});

    Addr base = mem.addRegion("stream", bytes, units, interleave_bytes);

    sim::Tick finish = 0;
    mem.accessRange(base, bytes, false, Requester::Dma,
                    [&finish](sim::Tick t) { finish = t; });
    sim.run();

    StreamCalibration out;
    if (finish > 0) {
        out.bandwidth = static_cast<double>(bytes) /
                        sim::secondsFromTicks(finish);
        double peak =
            timings.peakBandwidth() * channels;
        out.efficiency = out.bandwidth / peak;
    }
    return out;
}

} // namespace reach::mem
