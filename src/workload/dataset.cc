#include "dataset.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace reach::workload
{

Dataset::Dataset(const DatasetConfig &cfg)
    : data(cfg.numVectors, cfg.dim),
      centers(cfg.latentClusters, cfg.dim),
      labels(cfg.numVectors, 0)
{
    if (cfg.latentClusters == 0)
        sim::fatal("dataset needs at least one latent cluster");

    sim::Rng rng(cfg.seed);

    for (std::size_t c = 0; c < cfg.latentClusters; ++c) {
        auto row = centers.row(c);
        for (auto &v : row) {
            v = static_cast<float>(rng.nextGaussian() *
                                   cfg.centerSpread);
        }
    }

    for (std::size_t i = 0; i < cfg.numVectors; ++i) {
        std::uint32_t c = static_cast<std::uint32_t>(
            rng.nextUInt(cfg.latentClusters));
        labels[i] = c;
        auto center = centers.row(c);
        auto row = data.row(i);
        for (std::size_t d = 0; d < cfg.dim; ++d) {
            row[d] = center[d] + static_cast<float>(rng.nextGaussian() *
                                                    cfg.clusterStddev);
        }
    }
}

cbir::Matrix
Dataset::makeQueriesZipf(std::size_t count, double noise,
                         std::uint64_t seed, double s) const
{
    sim::Rng rng(seed);

    // Zipf CDF over latent clusters (rank r weight = 1/(r+1)^s).
    std::size_t k = centers.rows();
    std::vector<double> cdf(k);
    double total = 0;
    for (std::size_t r = 0; r < k; ++r) {
        total += 1.0 / std::pow(static_cast<double>(r + 1), s);
        cdf[r] = total;
    }

    // Member lists per latent cluster.
    std::vector<std::vector<std::uint32_t>> members(k);
    for (std::size_t i = 0; i < size(); ++i)
        members[labels[i]].push_back(static_cast<std::uint32_t>(i));

    cbir::Matrix queries(count, dim());
    for (std::size_t q = 0; q < count; ++q) {
        double u = rng.nextDouble() * total;
        std::size_t rank = static_cast<std::size_t>(
            std::lower_bound(cdf.begin(), cdf.end(), u) -
            cdf.begin());
        std::uint32_t cluster = clusterAtRank(rank);
        // Clusters can be empty in tiny datasets: fall back linearly.
        while (members[cluster].empty())
            cluster = (cluster + 1) % k;

        std::uint32_t base =
            members[cluster][rng.nextUInt(members[cluster].size())];
        auto src = data.row(base);
        auto dst = queries.row(q);
        for (std::size_t d = 0; d < dim(); ++d) {
            dst[d] = src[d] +
                     static_cast<float>(rng.nextGaussian() * noise);
        }
    }
    return queries;
}

cbir::Matrix
Dataset::makeQueries(std::size_t count, double noise,
                     std::uint64_t seed) const
{
    sim::Rng rng(seed);
    cbir::Matrix queries(count, dim());
    for (std::size_t q = 0; q < count; ++q) {
        std::size_t base = rng.nextUInt(size());
        auto src = data.row(base);
        auto dst = queries.row(q);
        for (std::size_t d = 0; d < dim(); ++d) {
            dst[d] = src[d] +
                     static_cast<float>(rng.nextGaussian() * noise);
        }
    }
    return queries;
}

} // namespace reach::workload
