/**
 * @file
 * Synthetic feature datasets.
 *
 * The paper evaluates on a billion-scale feature database we cannot
 * ship. We substitute a Gaussian-mixture dataset: vectors are drawn
 * around a configurable number of latent centers, so k-means finds
 * real structure and recall measurements are meaningful. The
 * *functional* layer materializes a sampled number of vectors; the
 * *timing* layer scales traffic to the configured full size (see
 * ScaleConfig in cbir/workload_model.hh).
 */

#ifndef REACH_WORKLOAD_DATASET_HH
#define REACH_WORKLOAD_DATASET_HH

#include <cstdint>
#include <vector>

#include "cbir/linalg.hh"
#include "sim/rng.hh"

namespace reach::workload
{

struct DatasetConfig
{
    /** Number of vectors to materialize. */
    std::size_t numVectors = 100'000;
    /** Feature dimensionality (paper: D = 96 after PCA). */
    std::size_t dim = 96;
    /** Latent mixture components. */
    std::size_t latentClusters = 64;
    /** Spread of cluster centers in feature space. */
    double centerSpread = 10.0;
    /** Intra-cluster standard deviation. */
    double clusterStddev = 1.0;
    std::uint64_t seed = 42;
};

/** A materialized synthetic dataset. */
class Dataset
{
  public:
    explicit Dataset(const DatasetConfig &cfg);

    const cbir::Matrix &vectors() const { return data; }
    const cbir::Matrix &latentCenters() const { return centers; }

    /** Latent component each vector was drawn from (ground truth). */
    const std::vector<std::uint32_t> &latentLabels() const
    {
        return labels;
    }

    std::size_t size() const { return data.rows(); }
    std::size_t dim() const { return data.cols(); }

    /**
     * Draw @p count queries: each is a dataset vector plus noise, so
     * its true nearest neighbours are known to be nearby.
     *
     * @param noise Standard deviation of the added perturbation.
     */
    cbir::Matrix makeQueries(std::size_t count, double noise,
                             std::uint64_t seed) const;

    /**
     * Skewed queries: latent clusters are ranked and sampled with
     * Zipf weight 1/rank^s, modeling real query logs where a few
     * topics dominate. s = 0 degenerates to uniform-over-clusters.
     */
    cbir::Matrix makeQueriesZipf(std::size_t count, double noise,
                                 std::uint64_t seed, double s) const;

    /** Latent cluster each Zipf rank maps to (rank 0 = hottest). */
    std::uint32_t clusterAtRank(std::size_t rank) const
    {
        return static_cast<std::uint32_t>(
            rank % centers.rows());
    }

  private:
    cbir::Matrix data;
    cbir::Matrix centers;
    std::vector<std::uint32_t> labels;
};

} // namespace reach::workload

#endif // REACH_WORKLOAD_DATASET_HH
